// InplaceFunction: a move-only callable with fixed inline storage.
//
// The event kernel fires millions of callbacks per campaign; wrapping each
// in std::function costs one heap allocation (and a later free) per event
// whenever the capture exceeds libstdc++'s tiny SBO window. InplaceFunction
// stores the callable in an inline buffer of `Capacity` bytes — never on the
// heap — so scheduling an event allocates nothing. Oversized captures are a
// compile error (see the static_asserts below), which keeps the budget an
// explicit contract instead of a silent performance cliff.
//
// Deliberately minimal: move-only (no copy, matching one-shot event
// semantics), no allocator, no target_type introspection.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace pofi::sim {

/// True when a callable of type F fits an InplaceFunction<Sig, Capacity>.
/// Exposed so tests (and curious callers) can check capacity budgets
/// without triggering the constructor's static_assert.
template <typename F, std::size_t Capacity>
inline constexpr bool fits_inplace_v =
    sizeof(std::decay_t<F>) <= Capacity &&
    alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
    std::is_nothrow_move_constructible_v<std::decay_t<F>>;

template <typename Sig, std::size_t Capacity = 64>
class InplaceFunction;  // primary left undefined; see the R(Args...) partial

template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "InplaceFunction: callable capture is larger than the inline "
                  "capacity — shrink the capture (capture pointers/indices, not "
                  "objects) or raise this InplaceFunction's Capacity parameter");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "InplaceFunction: callable is over-aligned for inline storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceFunction: callable must be nothrow-move-constructible "
                  "(moves happen during event-slot recycling)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    invoke_ = [](void* s, Args... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(s)))(std::forward<Args>(args)...);
    };
    manage_ = [](void* dst, void* src) noexcept {
      Fn* from = std::launder(reinterpret_cast<Fn*>(src));
      if (dst != nullptr) ::new (dst) Fn(std::move(*from));
      from->~Fn();
    };
  }

  InplaceFunction(InplaceFunction&& other) noexcept { move_from(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call{};
    return invoke_(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }

  /// Destroy the stored callable (and everything it captured) immediately.
  void reset() noexcept {
    if (manage_ != nullptr) manage_(nullptr, storage_);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

 private:
  void move_from(InplaceFunction& other) noexcept {
    if (other.manage_ != nullptr) {
      other.manage_(storage_, other.storage_);  // move-construct + destroy src
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  R (*invoke_)(void*, Args...) = nullptr;
  /// dst == nullptr: destroy src. Otherwise: move-construct src into dst,
  /// then destroy src.
  void (*manage_)(void* dst, void* src) noexcept = nullptr;
};

}  // namespace pofi::sim
