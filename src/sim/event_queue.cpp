#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace pofi::sim {

EventId EventQueue::schedule_at(TimePoint at, Callback cb) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{at, seq, std::move(cb)});
  pending_seqs_.insert(seq);
  return EventId{seq};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid()) return false;
  // Only a still-pending event can be cancelled; cancelling one that already
  // fired (or a stale/duplicate cancel) is a no-op.
  if (pending_seqs_.erase(id.raw()) == 0) return false;
  cancelled_.insert(id.raw());  // lazy removal when it surfaces in the heap
  return true;
}

void EventQueue::skip_cancelled() {
  while (!heap_.empty()) {
    const auto found = cancelled_.find(heap_.top().seq);
    if (found == cancelled_.end()) return;
    cancelled_.erase(found);
    heap_.pop();
  }
}

TimePoint EventQueue::next_time() const {
  // const access: walk a copy-free path by peeking through cancellations.
  // We keep this cheap by mutating in the non-const pop path only; here we
  // conservatively scan the heap top (cancelled entries at the top are rare).
  auto* self = const_cast<EventQueue*>(this);
  self->skip_cancelled();
  if (heap_.empty()) return TimePoint::max();
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  Entry top = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  pending_seqs_.erase(top.seq);
  return Fired{top.time, std::move(top.cb)};
}

void EventQueue::clear() {
  heap_ = {};
  pending_seqs_.clear();
  cancelled_.clear();
}

}  // namespace pofi::sim
