#include "sim/event_queue.hpp"

#include <utility>

namespace pofi::sim {

EventId EventQueue::schedule_at(TimePoint at, Callback cb) {
  std::uint32_t idx;
  if (free_head_ != kNil) {
    idx = free_head_;
    free_head_ = slots_[idx].next_free;
  } else {
    idx = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[idx];
  s.time = at;
  s.seq = next_seq_++;
  s.cb = std::move(cb);
  s.live = true;
  s.next_free = kNil;

  heap_.push_back(HeapEntry{s.time, s.seq, idx});
  sift_up(heap_.size() - 1);
  ++live_;
  return EventId{s.seq, idx};
}

bool EventQueue::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= slots_.size()) return false;
  Slot& s = slots_[id.slot_];
  // Only a still-pending event can be cancelled; a fired event or a stale
  // handle onto a recycled slot fails the seq check and is a no-op.
  if (!s.live || s.seq != id.seq_) return false;
  s.live = false;
  s.cb.reset();  // free captured state now, not when the tombstone surfaces
  --live_;
  return true;
}

void EventQueue::sift_up(std::size_t pos) {
  const HeapEntry moving = heap_[pos];
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (!before(moving, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pos = parent;
  }
  heap_[pos] = moving;
}

void EventQueue::sift_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  const HeapEntry moving = heap_[pos];
  for (;;) {
    std::size_t child = 2 * pos + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], moving)) break;
    heap_[pos] = heap_[child];
    pos = child;
  }
  heap_[pos] = moving;
}

void EventQueue::pop_heap_top() {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::release_slot(std::uint32_t idx) {
  Slot& s = slots_[idx];
  s.seq = 0;
  s.live = false;
  s.next_free = free_head_;
  free_head_ = idx;
}

void EventQueue::sweep_top() {
  while (!heap_.empty() && !slots_[heap_[0].slot].live) {
    const std::uint32_t idx = heap_[0].slot;
    pop_heap_top();
    release_slot(idx);  // callback already destroyed at cancel()
  }
}

TimePoint EventQueue::next_time() const {
  // const access: tombstone sweeping only ever removes dead entries, so the
  // observable state is unchanged — same trick the PR-1 kernel used.
  auto* self = const_cast<EventQueue*>(this);
  self->sweep_top();
  if (self->heap_.empty()) return TimePoint::max();
  return heap_[0].time;
}

EventQueue::Fired EventQueue::pop() {
  sweep_top();
  assert(!heap_.empty() && "pop() on empty EventQueue");
  const std::uint32_t idx = heap_[0].slot;
  pop_heap_top();
  Slot& s = slots_[idx];
  Fired fired{s.time, std::move(s.cb)};
  s.cb.reset();
  release_slot(idx);
  --live_;
  return fired;
}

void EventQueue::clear() {
  for (Slot& s : slots_) s.cb.reset();  // tombstones included: free everything
  slots_.clear();
  heap_.clear();
  free_head_ = kNil;
  live_ = 0;
  // next_seq_ keeps counting: EventIds from before the clear stay invalid
  // (their slots are gone) and tie-break order never restarts mid-run.
  assert(empty() && size() == 0 && "clear() must leave no retained state");
}

}  // namespace pofi::sim
