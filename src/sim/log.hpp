// Minimal leveled logger tied to the virtual clock.
//
// Logging is off by default (benches run millions of events); tests and
// examples raise the level. printf-style to keep call sites terse.
#pragma once

#include <cstdarg>
#include <cstdio>

#include "sim/time.hpp"

namespace pofi::sim {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel lv) { level_ = lv; }
  [[nodiscard]] LogLevel level() const { return level_; }
  void set_sink(std::FILE* f) { sink_ = f; }

  [[nodiscard]] bool enabled(LogLevel lv) const { return lv <= level_ && level_ != LogLevel::kOff; }

  void log(LogLevel lv, TimePoint now, const char* component, const char* fmt, ...)
      __attribute__((format(printf, 5, 6)));

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kOff;
  std::FILE* sink_ = stderr;
};

#define POFI_LOG(lv, now, component, ...)                                  \
  do {                                                                     \
    auto& lg = ::pofi::sim::Logger::instance();                            \
    if (lg.enabled(lv)) lg.log(lv, now, component, __VA_ARGS__);           \
  } while (0)

#define POFI_INFO(now, component, ...) \
  POFI_LOG(::pofi::sim::LogLevel::kInfo, now, component, __VA_ARGS__)
#define POFI_DEBUG(now, component, ...) \
  POFI_LOG(::pofi::sim::LogLevel::kDebug, now, component, __VA_ARGS__)
#define POFI_WARN(now, component, ...) \
  POFI_LOG(::pofi::sim::LogLevel::kWarn, now, component, __VA_ARGS__)

}  // namespace pofi::sim
