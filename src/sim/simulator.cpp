#include "sim/simulator.hpp"

namespace pofi::sim {

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    const TimePoint t = queue_.next_time();
    if (t > deadline) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++fired;
  }
  if (now_ < deadline) now_ = deadline;
  events_fired_ += fired;
  return fired;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    if (max_events != 0 && fired >= max_events) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++fired;
  }
  events_fired_ += fired;
  return fired;
}

}  // namespace pofi::sim
