#include "sim/simulator.hpp"

#include <string>

namespace pofi::sim {

void Simulator::check_abort() const {
  if (step_limit_ != 0 && events_fired_ >= step_limit_) {
    throw AbortError(AbortReason::kStepLimit,
                     "simulation step budget exceeded (" +
                         std::to_string(step_limit_) + " events)");
  }
  if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
    throw AbortError(AbortReason::kCancelled, "simulation cancelled");
  }
}

std::uint64_t Simulator::run_until(TimePoint deadline) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    const TimePoint t = queue_.next_time();
    if (t > deadline) break;
    check_abort();
    if (probe_ != nullptr && probe_->on_boundary(events_fired_)) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++fired;
    ++events_fired_;
  }
  if (now_ < deadline) now_ = deadline;
  return fired;
}

std::uint64_t Simulator::run_all(std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (!queue_.empty()) {
    if (max_events != 0 && fired >= max_events) break;
    check_abort();
    if (probe_ != nullptr && probe_->on_boundary(events_fired_)) break;
    auto ev = queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++fired;
    ++events_fired_;
  }
  return fired;
}

}  // namespace pofi::sim
