// Deterministic discrete-event queue.
//
// Events are (time, sequence, callback). Ties on time break by insertion
// order, which makes simulations reproducible: two events scheduled for the
// same instant always fire in the order they were scheduled.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pofi::sim {

/// Handle for cancelling a scheduled event.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return seq_; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr explicit EventId(std::uint64_t s) : seq_(s) {}
  std::uint64_t seq_ = 0;
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to run at absolute time `at`. Returns a cancellable id.
  EventId schedule_at(TimePoint at, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return pending_seqs_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_seqs_.size(); }

  /// Time of the earliest pending event; TimePoint::max() when empty.
  [[nodiscard]] TimePoint next_time() const;

  /// Pop and return the earliest event. Precondition: !empty().
  struct Fired {
    TimePoint time;
    Callback cb;
  };
  Fired pop();

  /// Drop everything (used when tearing an experiment down).
  void clear();

 private:
  struct Entry {
    TimePoint time;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void skip_cancelled();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<std::uint64_t> pending_seqs_;  ///< scheduled, not yet fired
  std::unordered_set<std::uint64_t> cancelled_;     ///< awaiting lazy removal
  std::uint64_t next_seq_ = 1;
};

}  // namespace pofi::sim
