// Deterministic discrete-event queue.
//
// Events are (time, sequence, callback). Ties on time break by insertion
// order, which makes simulations reproducible: two events scheduled for the
// same instant always fire in the order they were scheduled.
//
// Implementation: an indexed binary min-heap over a slot arena. Each event
// lives in one slot; the heap orders slot indices by (time, seq). Slots are
// recycled through an intrusive free list, so steady-state scheduling
// allocates nothing, and the callback's inline storage (InplaceFunction)
// keeps captures off the heap too. Cancellation flips the slot dead in O(1)
// — no hash lookups anywhere on the schedule/pop/cancel path — and drops the
// callback's captured state immediately; the heap entry becomes a tombstone
// swept lazily when it reaches the top.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/inplace_function.hpp"
#include "sim/time.hpp"

namespace pofi::sim {

/// Inline capture budget for event callbacks. Sized for the fattest capture
/// in the tree (FTL journal/GC continuations); the InplaceFunction
/// static_assert names any future overflow at compile time.
inline constexpr std::size_t kEventCallbackCapacity = 120;

/// Handle for cancelling a scheduled event. Carries the event's sequence
/// number (identity) and its arena slot (O(1) cancellation); a recycled
/// slot's seq mismatch makes stale handles harmless.
class EventId {
 public:
  constexpr EventId() = default;
  [[nodiscard]] constexpr bool valid() const { return seq_ != 0; }
  [[nodiscard]] constexpr std::uint64_t raw() const { return seq_; }
  constexpr bool operator==(const EventId&) const = default;

 private:
  friend class EventQueue;
  constexpr EventId(std::uint64_t s, std::uint32_t slot) : seq_(s), slot_(slot) {}
  std::uint64_t seq_ = 0;
  std::uint32_t slot_ = 0;
};

class EventQueue {
 public:
  using Callback = InplaceFunction<void(), kEventCallbackCapacity>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedule `cb` to run at absolute time `at`. Returns a cancellable id.
  EventId schedule_at(TimePoint at, Callback cb);

  /// Cancel a pending event. Cancelling an already-fired or unknown id is a
  /// harmless no-op (returns false). The callback and everything it captured
  /// are destroyed immediately, not when the tombstone surfaces.
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  [[nodiscard]] std::size_t size() const { return live_; }

  /// Time of the earliest pending event; TimePoint::max() when empty.
  [[nodiscard]] TimePoint next_time() const;

  /// True while `id` names a scheduled, not-yet-fired, not-cancelled event.
  /// Stale ids (recycled slot, different seq) read false, like cancel().
  [[nodiscard]] bool pending(EventId id) const {
    return id.valid() && id.slot_ < slots_.size() && slots_[id.slot_].live &&
           slots_[id.slot_].seq == id.raw();
  }

  /// Scheduled firing time of a pending event; TimePoint::max() otherwise.
  [[nodiscard]] TimePoint time_of(EventId id) const {
    return pending(id) ? slots_[id.slot_].time : TimePoint::max();
  }

  /// Pop and return the earliest event. Precondition: !empty().
  struct Fired {
    TimePoint time;
    Callback cb;
  };
  Fired pop();

  /// Drop everything (used when tearing an experiment down). All retained
  /// callback state is freed here, tombstones included.
  void clear();

 private:
  static constexpr std::uint32_t kNil = ~0u;

  struct Slot {
    TimePoint time;
    std::uint64_t seq = 0;  ///< 0 while on the free list
    Callback cb;
    bool live = false;            ///< scheduled and not cancelled
    std::uint32_t next_free = kNil;
  };

  /// Heap entry: the (time, seq) sort key is duplicated out of the slot so
  /// sift comparisons walk contiguous memory instead of dereferencing two
  /// random slots per level (the heap array is hot; the arena is not).
  struct HeapEntry {
    TimePoint time;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  /// Strict (time, seq) order — identical tie-breaking to the PR-1 kernel.
  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t pos);
  void sift_down(std::size_t pos);
  void pop_heap_top();
  void release_slot(std::uint32_t idx);
  /// Drop tombstones off the heap top so heap_[0] is live (or heap empty).
  void sweep_top();

  std::vector<Slot> slots_;      ///< arena; index = slot id
  std::vector<HeapEntry> heap_;  ///< binary min-heap keyed by (time, seq)
  std::uint32_t free_head_ = kNil;  ///< intrusive free list through slots_
  std::size_t live_ = 0;            ///< scheduled minus fired minus cancelled
  std::uint64_t next_seq_ = 1;
};

}  // namespace pofi::sim
