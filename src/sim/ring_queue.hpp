// Growable FIFO ring buffer with power-of-two capacity.
//
// std::deque allocates a fresh chunk every few pushes when the element is
// large (NandChip's ~450-byte InFlight fills a libstdc++ chunk almost
// immediately), which puts an allocation on every flash-op submission. The
// ring reuses one flat buffer: after warm-up, push/pop never allocate. FIFO
// order is identical to deque push_back/pop_front.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace pofi::sim {

template <typename T>
class RingQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  void push_back(T value) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(value);
    ++count_;
  }

  T pop_front() {
    T out = std::move(buf_[head_]);
    buf_[head_] = T{};  // drop captured resources eagerly
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return out;
  }

  /// Discards all queued elements (their resources are released) but keeps
  /// the buffer, so the queue stays allocation-free after a power cycle.
  void clear() {
    for (std::size_t i = 0; i < count_; ++i) {
      buf_[(head_ + i) & (buf_.size() - 1)] = T{};
    }
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t old_cap = buf_.size();
    std::vector<T> bigger(old_cap == 0 ? kInitialCapacity : old_cap * 2);
    for (std::size_t i = 0; i < count_; ++i) {
      bigger[i] = std::move(buf_[(head_ + i) & (old_cap - 1)]);
    }
    buf_ = std::move(bigger);
    head_ = 0;
  }

  static constexpr std::size_t kInitialCapacity = 8;

  std::vector<T> buf_;  ///< capacity; always a power of two (or empty)
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace pofi::sim
