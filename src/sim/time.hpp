// SimTime: strong nanosecond timestamp/duration types for the event kernel.
//
// The whole platform runs on a single deterministic virtual clock. We keep
// time as a 64-bit signed nanosecond count (enough for ~292 years of
// simulated time), wrapped in strong types so that timestamps, durations and
// raw integers cannot be mixed accidentally.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <string>

namespace pofi::sim {

/// A span of virtual time, in nanoseconds. Value type, totally ordered.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr static Duration ns(std::int64_t v) { return Duration{v}; }
  constexpr static Duration us(std::int64_t v) { return Duration{v * 1'000}; }
  constexpr static Duration ms(std::int64_t v) { return Duration{v * 1'000'000}; }
  constexpr static Duration sec(std::int64_t v) { return Duration{v * 1'000'000'000}; }
  /// Fractional helpers (rounds toward zero).
  constexpr static Duration us_f(double v) { return Duration{static_cast<std::int64_t>(v * 1e3)}; }
  constexpr static Duration ms_f(double v) { return Duration{static_cast<std::int64_t>(v * 1e6)}; }
  constexpr static Duration sec_f(double v) { return Duration{static_cast<std::int64_t>(v * 1e9)}; }
  constexpr static Duration zero() { return Duration{0}; }
  constexpr static Duration max() { return Duration{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration operator+(Duration o) const { return Duration{ns_ + o.ns_}; }
  constexpr Duration operator-(Duration o) const { return Duration{ns_ - o.ns_}; }
  constexpr Duration operator*(std::int64_t k) const { return Duration{ns_ * k}; }
  constexpr Duration operator/(std::int64_t k) const { return Duration{ns_ / k}; }
  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }
  [[nodiscard]] constexpr bool is_zero() const { return ns_ == 0; }
  [[nodiscard]] constexpr bool is_negative() const { return ns_ < 0; }

  /// Scale by a double; used by timing jitter. Rounds toward zero.
  [[nodiscard]] constexpr Duration scaled(double f) const {
    return Duration{static_cast<std::int64_t>(static_cast<double>(ns_) * f)};
  }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit Duration(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

/// An instant on the virtual clock. Only duration arithmetic is allowed.
class TimePoint {
 public:
  constexpr TimePoint() = default;
  constexpr static TimePoint from_ns(std::int64_t v) { return TimePoint{v}; }
  constexpr static TimePoint zero() { return TimePoint{0}; }
  constexpr static TimePoint max() { return TimePoint{std::numeric_limits<std::int64_t>::max()}; }

  [[nodiscard]] constexpr std::int64_t count_ns() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_sec() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const TimePoint&) const = default;

  constexpr TimePoint operator+(Duration d) const { return TimePoint{ns_ + d.count_ns()}; }
  constexpr TimePoint operator-(Duration d) const { return TimePoint{ns_ - d.count_ns()}; }
  constexpr Duration operator-(TimePoint o) const { return Duration::ns(ns_ - o.ns_); }
  constexpr TimePoint& operator+=(Duration d) { ns_ += d.count_ns(); return *this; }

  [[nodiscard]] std::string to_string() const;

 private:
  constexpr explicit TimePoint(std::int64_t v) : ns_(v) {}
  std::int64_t ns_ = 0;
};

namespace literals {
constexpr Duration operator""_ns(unsigned long long v) { return Duration::ns(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_us(unsigned long long v) { return Duration::us(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_ms(unsigned long long v) { return Duration::ms(static_cast<std::int64_t>(v)); }
constexpr Duration operator""_s(unsigned long long v) { return Duration::sec(static_cast<std::int64_t>(v)); }
}  // namespace literals

}  // namespace pofi::sim
