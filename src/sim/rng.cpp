#include "sim/rng.hpp"

#include <cmath>

namespace pofi::sim {

double Rng::exponential(double mean) {
  // Inverse CDF; clamp the uniform away from 0 to avoid log(0).
  double u = uniform();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0.0) return 0;
  if (lambda < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double p = 1.0;
    do {
      ++k;
      p *= uniform();
    } while (p > limit);
    return k - 1;
  }
  // Normal approximation with continuity correction; adequate for the
  // bit-error counts this platform draws (lambda up to a few thousand).
  const double sd = std::sqrt(lambda);
  // Box-Muller.
  double u1 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  const double v = lambda + sd * z + 0.5;
  if (v < 0.0) return 0;
  return static_cast<std::uint64_t>(v);
}

Rng Rng::fork(std::string_view label) const {
  // FNV-1a over the label, mixed with the current state through SplitMix64.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : label) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  std::uint64_t sm = h ^ s_[0] ^ (s_[2] << 1);
  Rng child(splitmix64(sm));
  return child;
}

}  // namespace pofi::sim
