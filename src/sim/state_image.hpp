// Snapshot primitives for the device-state capture/restore protocol.
//
// The event queue holds non-copyable InplaceFunction callbacks, so the
// simulator's schedule cannot be captured wholesale. Snapshots are therefore
// taken only at *quiescent* boundaries, where the queue holds nothing but a
// small, known set of re-armable timers (the torture harness's pace event,
// the FTL's journal tick, the write cache's hold-time wake). Each timer is
// captured as a TimerImage — armed flag, absolute deadline, original
// sequence number — and restore() re-creates the callback from code, not
// from the image.
//
// Relative sequence order among re-armed timers must match the capture
// (ties on time break by seq), so restores enqueue their re-arm closures
// into a TimerRearmer, which sorts by original seq before scheduling. The
// absolute seq values differ after restore; only relative order matters.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace pofi::sim {

/// One re-armable timer at a quiescent boundary.
struct TimerImage {
  bool armed = false;
  TimePoint deadline = TimePoint::zero();
  std::uint64_t seq = 0;  ///< original EventId::raw(), for relative ordering
};

/// The simulator's own copyable state (the queue is re-built by re-arming).
struct SimulatorImage {
  TimePoint now = TimePoint::zero();
  std::uint64_t events_fired = 0;
  std::array<std::uint64_t, 4> rng_state{};
};

/// Collects re-arm closures during restore and replays them in original
/// scheduling order. The vector is a reusable member of whoever drives the
/// restore, so warmed cycles do not allocate.
class TimerRearmer {
 public:
  /// `schedule` must create the timer's event at its captured deadline.
  void enqueue(const TimerImage& image, std::function<void()> schedule) {
    if (!image.armed) return;
    entries_.push_back(Entry{image.seq, std::move(schedule)});
  }

  /// Re-arm everything in ascending captured-seq order, then forget it.
  void execute() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) { return a.seq < b.seq; });
    for (Entry& e : entries_) e.schedule();
    entries_.clear();  // capacity retained
  }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    std::function<void()> schedule;
  };
  std::vector<Entry> entries_;
};

}  // namespace pofi::sim
