// The simulation executor: a virtual clock plus the event queue.
//
// Components hold a Simulator& and schedule work with `after()` /`at()`.
// `run_until` / `run_for` / `run_all` drive the experiment. The executor is
// strictly single-threaded; "threads" in the paper's software part (fault
// scheduler vs IO generator) become interleaved event streams, which keeps
// every run deterministic.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pofi::sim {

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : master_rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule at an absolute instant. Scheduling in the past is clamped to
  /// `now` (fires next, preserving order with other now-events).
  EventId at(TimePoint t, EventQueue::Callback cb) {
    if (t < now_) t = now_;
    return queue_.schedule_at(t, std::move(cb));
  }

  /// Schedule `d` after the current instant.
  EventId after(Duration d, EventQueue::Callback cb) {
    if (d.is_negative()) d = Duration::zero();
    return queue_.schedule_at(now_ + d, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run events with time <= deadline. Returns number of events fired.
  std::uint64_t run_until(TimePoint deadline);

  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Run to quiescence (no pending events). `max_events` guards against
  /// self-perpetuating chains; 0 means unbounded.
  std::uint64_t run_all(std::uint64_t max_events = 0);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Master RNG: fork children from it, one per component.
  [[nodiscard]] Rng& rng() { return master_rng_; }
  [[nodiscard]] Rng fork_rng(std::string_view label) const { return master_rng_.fork(label); }

 private:
  TimePoint now_ = TimePoint::zero();
  EventQueue queue_;
  Rng master_rng_;
  std::uint64_t events_fired_ = 0;
};

}  // namespace pofi::sim
