// The simulation executor: a virtual clock plus the event queue.
//
// Components hold a Simulator& and schedule work with `after()` /`at()`.
// `run_until` / `run_for` / `run_all` drive the experiment. The executor is
// strictly single-threaded; "threads" in the paper's software part (fault
// scheduler vs IO generator) become interleaved event streams, which keeps
// every run deterministic.
//
// Two cooperative abort channels protect long campaigns from pathological
// configs and let an external supervisor (the campaign runner, a signal
// handler) stop a simulation without killing the process:
//
//   * step budget  — set_step_limit(n): the run loops throw AbortError
//     (kStepLimit) once the lifetime event count exceeds n. Deterministic:
//     the same campaign aborts at the same event at any thread count.
//   * cancel token — set_cancel_token(flag): a shared atomic polled between
//     events; when another thread sets it, the run loops throw AbortError
//     (kCancelled) at the next event boundary.
//
// Both throw *between* callbacks, never inside one, so component state is
// always at an event boundary when the exception unwinds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <stdexcept>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/state_image.hpp"
#include "sim/time.hpp"

// Observability compile gate (normally injected by CMake's POFI_OBS option).
#ifndef POFI_OBS_ENABLED
#define POFI_OBS_ENABLED 1
#endif

namespace pofi::obs {
class MetricRegistry;
}  // namespace pofi::obs

namespace pofi::sim {

/// Why a simulation was aborted between event callbacks.
enum class AbortReason : std::uint8_t {
  kStepLimit,  ///< lifetime event count exceeded the configured budget
  kCancelled,  ///< the cancel token was set by a supervisor
};

[[nodiscard]] constexpr const char* to_string(AbortReason r) {
  switch (r) {
    case AbortReason::kStepLimit: return "step-limit";
    case AbortReason::kCancelled: return "cancelled";
  }
  return "?";
}

/// Thrown by the run loops when the step budget is exhausted or the cancel
/// token fires. Carries the reason so supervisors can tell a stuck campaign
/// (quarantine it) from an operator interrupt (stop the suite).
class AbortError : public std::runtime_error {
 public:
  AbortError(AbortReason reason, const std::string& message)
      : std::runtime_error(message), reason_(reason) {}
  [[nodiscard]] AbortReason reason() const { return reason_; }

 private:
  AbortReason reason_;
};

/// Crash-point hook for systematic exploration (src/torture/). When a probe
/// is attached, the run loops consult it once per event — *before* popping —
/// and stop cleanly (no throw, event still queued) when it returns true. The
/// torture explorer uses this to halt the simulation at an exact event-queue
/// boundary and inject a power fault there. Like the obs attachment, a
/// detached probe (nullptr, the default) costs one pointer compare per event
/// and cannot alter the schedule.
class BoundaryProbe {
 public:
  virtual ~BoundaryProbe() = default;
  /// `events_fired` is the lifetime count *before* the pending event runs;
  /// return true to stop the run loop at this boundary.
  virtual bool on_boundary(std::uint64_t events_fired) = 0;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1) : master_rng_(seed) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedule at an absolute instant. Scheduling in the past is clamped to
  /// `now` (fires next, preserving order with other now-events).
  EventId at(TimePoint t, EventQueue::Callback cb) {
    if (t < now_) t = now_;
    return queue_.schedule_at(t, std::move(cb));
  }

  /// Schedule `d` after the current instant.
  EventId after(Duration d, EventQueue::Callback cb) {
    if (d.is_negative()) d = Duration::zero();
    return queue_.schedule_at(now_ + d, std::move(cb));
  }

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run events with time <= deadline. Returns number of events fired.
  std::uint64_t run_until(TimePoint deadline);

  std::uint64_t run_for(Duration d) { return run_until(now_ + d); }

  /// Run to quiescence (no pending events). `max_events` guards against
  /// self-perpetuating chains; 0 means unbounded.
  std::uint64_t run_all(std::uint64_t max_events = 0);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const { return events_fired_; }

  /// Whether a scheduled event is still pending (not fired, not cancelled).
  [[nodiscard]] bool event_pending(EventId id) const { return queue_.pending(id); }
  /// Scheduled time of a pending event; TimePoint::max() otherwise.
  [[nodiscard]] TimePoint event_time(EventId id) const { return queue_.time_of(id); }

  /// Capture the simulator's copyable state at a quiescent boundary. The
  /// queue itself is NOT captured (its callbacks are non-copyable); callers
  /// record each still-armed timer as a TimerImage and re-arm on restore.
  void snapshot(SimulatorImage& out) const {
    out.now = now_;
    out.events_fired = events_fired_;
    out.rng_state = master_rng_.state();
  }

  /// Restore to a captured quiescent boundary: clock, lifetime event count
  /// and master RNG rewind; every pending event is dropped (the caller
  /// re-arms the captured timers). Step limit, cancel token, metrics and
  /// probe attachments are left alone, like reset().
  void restore(const SimulatorImage& image) {
    queue_.clear();
    now_ = image.now;
    events_fired_ = image.events_fired;
    master_rng_.set_state(image.rng_state);
  }

  /// Lifetime event budget: once events_fired() exceeds `max_events`, the run
  /// loops throw AbortError(kStepLimit) at the next event boundary. 0 (the
  /// default) disables the check. The budget is in simulation events, so it
  /// trips at the same point of the same campaign on every machine.
  void set_step_limit(std::uint64_t max_events) { step_limit_ = max_events; }
  [[nodiscard]] std::uint64_t step_limit() const { return step_limit_; }

  /// Cooperative cancellation: `token` (owned by the caller, may be shared by
  /// a supervisor thread or a signal handler) is polled between events; when
  /// it reads true the run loops throw AbortError(kCancelled). nullptr (the
  /// default) disables the check.
  void set_cancel_token(const std::atomic<bool>* token) { cancel_ = token; }

  /// Session reset: drain every pending event, rewind the clock and reseed
  /// the master RNG, keeping the queue's slot arena (and its capacity) so a
  /// pooled simulator re-runs without allocating. Event sequence numbers keep
  /// counting across resets — only their relative order matters for
  /// tie-breaks, so the schedule is bit-identical to a fresh simulator.
  /// The step limit, cancel token and metrics attachment are deliberately
  /// left alone; owners re-apply them as part of their own reset.
  void reset(std::uint64_t seed) {
    queue_.clear();
    now_ = TimePoint::zero();
    events_fired_ = 0;
    master_rng_.reseed(seed);
  }

  /// Master RNG: fork children from it, one per component.
  [[nodiscard]] Rng& rng() { return master_rng_; }
  [[nodiscard]] Rng fork_rng(std::string_view label) const { return master_rng_.fork(label); }

  /// Observability attachment point. Components instrument themselves with
  ///   if (auto* m = sim.metrics()) m->add(id);
  /// Attaching a registry is the runtime enable; compiling with
  /// POFI_OBS_ENABLED=0 pins metrics() to nullptr so every such branch is
  /// dead code. Instrumentation must only read sim state — never schedule
  /// events or draw randomness — so behaviour is identical either way.
  void set_metrics(obs::MetricRegistry* registry) { metrics_ = registry; }

  /// Crash-point attachment (see BoundaryProbe). reset() leaves it alone,
  /// like the metrics registry: the owner manages the probe's lifetime.
  void set_boundary_probe(BoundaryProbe* probe) { probe_ = probe; }
  [[nodiscard]] BoundaryProbe* boundary_probe() const { return probe_; }

  [[nodiscard]] obs::MetricRegistry* metrics() const {
#if POFI_OBS_ENABLED
    return metrics_;
#else
    return nullptr;
#endif
  }

 private:
  /// Throws AbortError when the step budget is spent or the cancel token is
  /// set; called once per event, before the callback fires.
  void check_abort() const;

  TimePoint now_ = TimePoint::zero();
  EventQueue queue_;
  Rng master_rng_;
  std::uint64_t events_fired_ = 0;
  std::uint64_t step_limit_ = 0;
  const std::atomic<bool>* cancel_ = nullptr;
  obs::MetricRegistry* metrics_ = nullptr;
  BoundaryProbe* probe_ = nullptr;
};

}  // namespace pofi::sim
