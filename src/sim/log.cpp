#include "sim/log.hpp"

namespace pofi::sim {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

namespace {
const char* level_tag(LogLevel lv) {
  switch (lv) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}
}  // namespace

void Logger::log(LogLevel lv, TimePoint now, const char* component, const char* fmt, ...) {
  std::fprintf(sink_, "[%12.6fms] %s %-10s ", now.to_ms(), level_tag(lv), component);
  std::va_list ap;
  va_start(ap, fmt);
  std::vfprintf(sink_, fmt, ap);
  va_end(ap);
  std::fputc('\n', sink_);
}

}  // namespace pofi::sim
