// Fig. 2 of the paper: the data packet.
//
// Every generated request is a packet of header + randomly generated data.
// The header carries size, destination address, queue/complete times and the
// three checksums used for failure detection: the checksum of the payload,
// the checksum of whatever lived at the address *before* the request (for
// FWA detection), and the checksum read back after completion. The trailing
// flags are filled by the Analyzer.
#pragma once

#include <cstdint>
#include <vector>

#include "ftl/types.hpp"
#include "sim/time.hpp"

namespace pofi::workload {

enum class OpType : std::uint8_t { kRead, kWrite };

[[nodiscard]] constexpr const char* to_string(OpType t) {
  return t == OpType::kRead ? "read" : "write";
}

struct DataPacket {
  // ----- header (Fig. 2) ----------------------------------------------------
  std::uint64_t packet_id = 0;
  OpType op = OpType::kWrite;
  ftl::Lpn address = 0;        ///< destination address (logical page)
  std::uint32_t size_pages = 1;
  sim::TimePoint queue_time;     ///< when the request was queued to the device
  sim::TimePoint complete_time;  ///< when the ACK arrived (if it did)

  std::uint64_t initial_checksum = 0;  ///< contents at address before issuing
  std::uint64_t data_checksum = 0;     ///< checksum of this packet's payload
  std::uint64_t final_checksum = 0;    ///< read-back checksum after completion

  // ----- flags (filled by the Analyzer) --------------------------------------
  bool modified = false;      ///< ACK seen (request reported complete)
  bool data_failure = false;  ///< read-back mismatched the payload
  bool not_issued = false;    ///< never reached the device / IO error

  // ----- payload --------------------------------------------------------------
  /// One collision-free content tag per page (hot path). The request-level
  /// data_checksum is combine_tags() over these.
  std::vector<std::uint64_t> page_tags;
  /// Per-page contents at the destination when the request was issued (the
  /// expansion of initial_checksum; what an FWA leaves behind).
  std::vector<std::uint64_t> initial_page_tags;

  [[nodiscard]] std::uint64_t bytes(std::uint32_t page_size) const {
    return static_cast<std::uint64_t>(size_pages) * page_size;
  }
};

}  // namespace pofi::workload
