// Checksums used by the failure-detection pipeline.
//
// The paper stores three checksums per data packet (Fig. 2) and detects data
// loss by comparing the written data's checksum with the read-back data. We
// provide CRC32C (Castagnoli, the storage-industry standard) and FNV-1a/64.
// On the hot simulation path contents are identified by collision-free tags,
// but full-payload tests run these real codecs end-to-end.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pofi::workload {

/// CRC32C (polynomial 0x1EDC6F41, reflected 0x82F63B78), table-driven.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::uint8_t> data,
                                   std::uint32_t seed = 0);

/// FNV-1a 64-bit.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::uint8_t> data);

/// Combine a sequence of page tags into one request-level checksum. Order
/// sensitive (a permuted payload must not collide).
[[nodiscard]] std::uint64_t combine_tags(std::span<const std::uint64_t> tags);

}  // namespace pofi::workload
