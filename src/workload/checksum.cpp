#include "workload/checksum.hpp"

#include <array>

namespace pofi::workload {

namespace {

constexpr std::uint32_t kPolyReflected = 0x82F63B78u;

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

constexpr auto kCrcTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t crc = ~seed;
  for (const std::uint8_t b : data) {
    crc = kCrcTable[(crc ^ b) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

std::uint64_t fnv1a64(std::span<const std::uint8_t> data) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const std::uint8_t b : data) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::uint64_t combine_tags(std::span<const std::uint64_t> tags) {
  // FNV-1a over the tag bytes, mixing in the position so reorderings differ.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::uint64_t pos = 1;
  for (const std::uint64_t t : tags) {
    std::uint64_t v = t * 0x9e3779b97f4a7c15ULL + pos++;
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xffULL;
      h *= 0x100000001b3ULL;
    }
  }
  return h;
}

}  // namespace pofi::workload
