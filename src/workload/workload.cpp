#include "workload/workload.hpp"

#include <algorithm>
#include <cassert>

namespace pofi::workload {

WorkloadGenerator::WorkloadGenerator(WorkloadConfig config, sim::Rng rng)
    : config_(std::move(config)), rng_(rng), seq_cursor_(config_.base_lpn) {
  if (config_.replay.empty()) {
    assert(config_.min_pages >= 1 && config_.min_pages <= config_.max_pages);
    assert(config_.wss_pages >= config_.max_pages);
  }
}

std::uint32_t WorkloadGenerator::pick_pages() {
  if (config_.min_pages == config_.max_pages) return config_.min_pages;
  return static_cast<std::uint32_t>(
      rng_.range(config_.min_pages, config_.max_pages));
}

ftl::Lpn WorkloadGenerator::pick_lpn(std::uint32_t pages) {
  switch (config_.pattern) {
    case AccessPattern::kUniformRandom: {
      const std::uint64_t span = config_.wss_pages - pages + 1;
      return config_.base_lpn + rng_.below(span);
    }
    case AccessPattern::kSequential: {
      if (seq_cursor_ + pages > config_.base_lpn + config_.wss_pages) {
        seq_cursor_ = config_.base_lpn;  // wrap at the end of the working set
      }
      const ftl::Lpn lpn = seq_cursor_;
      seq_cursor_ += pages;
      return lpn;
    }
  }
  return config_.base_lpn;
}

RequestSpec WorkloadGenerator::next() {
  ++generated_;
  if (!config_.replay.empty()) {
    // Trace replay: cycle through the recorded stream verbatim.
    return config_.replay[(generated_ - 1) % config_.replay.size()];
  }
  if (pair_pending_) {
    pair_pending_ = false;
    return pair_second_;
  }

  RequestSpec spec;
  spec.pages = pick_pages();
  spec.lpn = pick_lpn(spec.pages);

  if (config_.sequence != SequenceMode::kNone) {
    // First access of a dependent pair; the second hits the same address.
    OpType first = OpType::kRead;
    OpType second = OpType::kRead;
    switch (config_.sequence) {
      case SequenceMode::kRAR: first = OpType::kRead;  second = OpType::kRead;  break;
      case SequenceMode::kRAW: first = OpType::kWrite; second = OpType::kRead;  break;
      case SequenceMode::kWAR: first = OpType::kRead;  second = OpType::kWrite; break;
      case SequenceMode::kWAW: first = OpType::kWrite; second = OpType::kWrite; break;
      case SequenceMode::kNone: break;
    }
    spec.op = first;
    pair_second_ = RequestSpec{second, spec.lpn, spec.pages};
    pair_pending_ = true;
    return spec;
  }

  spec.op = rng_.chance(config_.write_fraction) ? OpType::kWrite : OpType::kRead;
  return spec;
}

}  // namespace pofi::workload
