// Full-payload codec: bridges content tags and real bytes.
//
// The hot simulation path identifies page contents by collision-free 64-bit
// tags. This codec makes the identification *checkable*: it deterministically
// expands any tag into a page-sized byte payload (header + xoshiro-generated
// data, as Fig. 2 prescribes: "data is produced randomly") and computes the
// CRC32C the paper's analyzer would store in the data packet. Tests verify
// that tag equality and payload-CRC equality agree, so the tag abstraction
// provably loses nothing relative to the real checksum pipeline.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "workload/checksum.hpp"

namespace pofi::workload {

class PayloadCodec {
 public:
  explicit PayloadCodec(std::uint32_t page_size_bytes = 4096)
      : page_size_(page_size_bytes) {}

  [[nodiscard]] std::uint32_t page_size() const { return page_size_; }

  /// Deterministic page contents for a tag. The first 16 bytes are a header
  /// (tag + size), the rest is seeded pseudo-random data.
  [[nodiscard]] std::vector<std::uint8_t> expand(std::uint64_t tag) const;

  /// CRC32C of expand(tag) without materialising the buffer twice.
  /// Memoized: analyzers re-check the same small tag population after every
  /// fault, and each miss costs a full page expansion + CRC. A direct-mapped
  /// cache (no chaining, overwrite on collision) keeps the memo bounded.
  /// Not thread-safe; parallel campaigns each own their codec.
  [[nodiscard]] std::uint32_t page_crc(std::uint64_t tag) const;

  /// Checksum-based comparison: does this byte payload carry `tag`?
  [[nodiscard]] bool matches(std::uint64_t tag,
                             std::span<const std::uint8_t> payload) const;

  /// Recover the tag from a payload header, validating the CRC. Returns
  /// false when the payload is corrupt (CRC mismatch).
  [[nodiscard]] bool extract(std::span<const std::uint8_t> payload,
                             std::uint64_t& tag_out) const;

 private:
  struct CrcMemo {
    std::uint64_t tag = 0;
    std::uint32_t crc = 0;
    bool valid = false;
  };
  static constexpr std::size_t kCrcCacheSlots = 64;

  std::uint32_t page_size_;
  mutable std::array<CrcMemo, kCrcCacheSlots> crc_cache_{};
};

}  // namespace pofi::workload
