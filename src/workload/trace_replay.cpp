#include "workload/trace_replay.hpp"

#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace pofi::workload {

std::vector<RequestSpec> parse_trace(const std::string& text) {
  std::vector<RequestSpec> specs;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments and skip blanks.
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    bool blank = true;
    for (const char c : line) {
      if (c != ' ' && c != '\t' && c != '\r') {
        blank = false;
        break;
      }
    }
    if (blank) continue;

    char op = 0;
    std::uint64_t lpn = 0;
    unsigned pages = 0;
    if (std::sscanf(line.c_str(), " %c %" SCNu64 " %u", &op, &lpn, &pages) != 3 ||
        (op != 'W' && op != 'R' && op != 'w' && op != 'r') || pages == 0) {
      throw std::invalid_argument("trace_replay: malformed line " + std::to_string(line_no) +
                                  ": " + line);
    }
    RequestSpec spec;
    spec.op = (op == 'W' || op == 'w') ? OpType::kWrite : OpType::kRead;
    spec.lpn = lpn;
    spec.pages = pages;
    specs.push_back(spec);
  }
  return specs;
}

std::string format_trace(const std::vector<RequestSpec>& specs) {
  std::string out;
  out.reserve(specs.size() * 16);
  char line[64];
  for (const RequestSpec& s : specs) {
    std::snprintf(line, sizeof line, "%c %" PRIu64 " %u\n",
                  s.op == OpType::kWrite ? 'W' : 'R', s.lpn, s.pages);
    out += line;
  }
  return out;
}

}  // namespace pofi::workload
