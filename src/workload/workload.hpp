// Workload generation: every knob the paper sweeps.
//
// WSS, request-size range, read/write mix, random vs sequential pattern,
// dependent access sequences (RAR/RAW/WAR/WAW, "each request is submitted on
// the address of the previously completed request"), and target request
// rate. The generator emits descriptors; the platform turns them into data
// packets with allocated content tags.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ftl/types.hpp"
#include "sim/rng.hpp"
#include "workload/data_packet.hpp"

namespace pofi::workload {

enum class AccessPattern : std::uint8_t { kUniformRandom, kSequential };

[[nodiscard]] constexpr const char* to_string(AccessPattern p) {
  return p == AccessPattern::kUniformRandom ? "random" : "sequential";
}

/// Dependent-pair sequences of §IV-G.
enum class SequenceMode : std::uint8_t { kNone, kRAR, kRAW, kWAR, kWAW };

[[nodiscard]] constexpr const char* to_string(SequenceMode m) {
  switch (m) {
    case SequenceMode::kNone: return "none";
    case SequenceMode::kRAR: return "RAR";
    case SequenceMode::kRAW: return "RAW";
    case SequenceMode::kWAR: return "WAR";
    case SequenceMode::kWAW: return "WAW";
  }
  return "?";
}

/// One request to be materialised into a DataPacket.
struct RequestSpec {
  OpType op = OpType::kWrite;
  ftl::Lpn lpn = 0;
  std::uint32_t pages = 1;
};

struct WorkloadConfig {
  std::string name = "workload";
  std::uint64_t wss_pages = 1ULL << 22;  ///< 16 GiB at 4 KiB pages
  ftl::Lpn base_lpn = 0;
  std::uint32_t min_pages = 1;     ///< 4 KiB
  std::uint32_t max_pages = 256;   ///< 1 MiB
  double write_fraction = 1.0;     ///< 1.0 = fully write
  AccessPattern pattern = AccessPattern::kUniformRandom;
  SequenceMode sequence = SequenceMode::kNone;
  /// Open-loop request rate; 0 keeps the platform in closed-loop mode.
  double target_iops = 0.0;
  /// Trace replay: when non-empty the generator cycles through these specs
  /// verbatim (see workload/trace_replay.hpp) and every synthetic knob
  /// above except target_iops is ignored.
  std::vector<RequestSpec> replay;

  [[nodiscard]] std::uint64_t wss_bytes(std::uint32_t page_size) const {
    return wss_pages * page_size;
  }
};

class WorkloadGenerator {
 public:
  WorkloadGenerator(WorkloadConfig config, sim::Rng rng);

  [[nodiscard]] const WorkloadConfig& config() const { return config_; }

  /// Produce the next request of the workload.
  RequestSpec next();

  /// Mean inter-arrival gap for open-loop submission (nullopt = closed loop).
  [[nodiscard]] std::optional<double> mean_interarrival_sec() const {
    if (config_.target_iops <= 0.0) return std::nullopt;
    return 1.0 / config_.target_iops;
  }

  [[nodiscard]] std::uint64_t generated() const { return generated_; }

  /// Session reset: adopt a (possibly different) workload and a fresh RNG
  /// stream in place. Equivalent to re-constructing, but string/vector
  /// assignment reuses existing capacity, keeping pooled runs alloc-free in
  /// steady state.
  void reset(const WorkloadConfig& config, sim::Rng rng) {
    config_ = config;
    rng_ = rng;
    generated_ = 0;
    seq_cursor_ = config_.base_lpn;
    pair_pending_ = false;
    pair_second_ = RequestSpec{};
  }

  /// Generator position within its stream. The config is construction/reset
  /// input, not state: restore() requires the generator to already carry the
  /// same workload the image was captured under.
  struct StateImage {
    std::array<std::uint64_t, 4> rng_state{};
    std::uint64_t generated = 0;
    ftl::Lpn seq_cursor = 0;
    bool pair_pending = false;
    RequestSpec pair_second{};
  };
  void snapshot(StateImage& out) const {
    out.rng_state = rng_.state();
    out.generated = generated_;
    out.seq_cursor = seq_cursor_;
    out.pair_pending = pair_pending_;
    out.pair_second = pair_second_;
  }
  void restore(const StateImage& image) {
    rng_.set_state(image.rng_state);
    generated_ = image.generated;
    seq_cursor_ = image.seq_cursor;
    pair_pending_ = image.pair_pending;
    pair_second_ = image.pair_second;
  }

 private:
  [[nodiscard]] std::uint32_t pick_pages();
  [[nodiscard]] ftl::Lpn pick_lpn(std::uint32_t pages);

  WorkloadConfig config_;
  sim::Rng rng_;
  std::uint64_t generated_ = 0;
  ftl::Lpn seq_cursor_ = 0;
  // Sequence-mode pair state: the second access replays the first's address.
  bool pair_pending_ = false;
  RequestSpec pair_second_{};
};

}  // namespace pofi::workload
