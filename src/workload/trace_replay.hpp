// Trace replay: run a recorded request stream through the platform.
//
// Format: one request per line, `W|R <lpn> <pages>`, '#' comments and blank
// lines ignored. Parsed traces plug into WorkloadConfig::replay, making any
// recorded workload (fio logs, production traces, regression cases) a
// first-class campaign input next to the synthetic generators.
#pragma once

#include <string>
#include <vector>

#include "workload/workload.hpp"

namespace pofi::workload {

/// Parse a trace. Throws std::invalid_argument (with the line number) on
/// malformed input.
[[nodiscard]] std::vector<RequestSpec> parse_trace(const std::string& text);

/// Serialise a request stream into the trace format.
[[nodiscard]] std::string format_trace(const std::vector<RequestSpec>& specs);

}  // namespace pofi::workload
