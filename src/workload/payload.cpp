#include "workload/payload.hpp"

#include <cstring>

#include "sim/rng.hpp"

namespace pofi::workload {

std::vector<std::uint8_t> PayloadCodec::expand(std::uint64_t tag) const {
  std::vector<std::uint8_t> out(page_size_);
  // Header: the tag and the page size, little-endian.
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(tag >> (i * 8));
  for (int i = 0; i < 4; ++i) out[8 + i] = static_cast<std::uint8_t>(page_size_ >> (i * 8));
  // Reserved 4 bytes stay zero; body is tag-seeded pseudo-random data.
  sim::Rng rng(tag ^ 0x706f6669ULL /* "pofi" */);
  std::size_t i = 16;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = rng.next();
    std::memcpy(&out[i], &word, 8);
    i += 8;
  }
  for (std::uint64_t word = rng.next(); i < out.size(); ++i, word >>= 8) {
    out[i] = static_cast<std::uint8_t>(word);
  }
  return out;
}

std::uint32_t PayloadCodec::page_crc(std::uint64_t tag) const {
  // Fibonacci-hash the tag so sequential tags spread across the slots.
  const std::size_t slot =
      static_cast<std::size_t>((tag * 0x9E3779B97F4A7C15ULL) >> 58) % kCrcCacheSlots;
  CrcMemo& memo = crc_cache_[slot];
  if (memo.valid && memo.tag == tag) return memo.crc;
  const auto bytes = expand(tag);
  memo = CrcMemo{tag, crc32c(bytes), true};
  return memo.crc;
}

bool PayloadCodec::matches(std::uint64_t tag, std::span<const std::uint8_t> payload) const {
  if (payload.size() != page_size_) return false;
  return crc32c(payload) == page_crc(tag);
}

bool PayloadCodec::extract(std::span<const std::uint8_t> payload, std::uint64_t& tag_out) const {
  if (payload.size() != page_size_ || payload.size() < 16) return false;
  std::uint64_t tag = 0;
  for (int i = 7; i >= 0; --i) tag = (tag << 8) | payload[static_cast<std::size_t>(i)];
  if (!matches(tag, payload)) return false;
  tag_out = tag;
  return true;
}

}  // namespace pofi::workload
