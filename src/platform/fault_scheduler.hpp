// The Scheduler of the paper's software part (Fig. 1).
//
// "It determines the random time instances in which power failure will be
// occurred. It sends On/Off Commands to the hardware part." The scheduler
// owns the fault timing policy and the command path (Arduino bridge); the
// campaign runner asks it to arm a fault and to sequence the power cycle.
#pragma once

#include <cstdint>

#include "psu/atx_control.hpp"
#include "psu/power_supply.hpp"
#include "sim/simulator.hpp"

namespace pofi::platform {

class FaultScheduler {
 public:
  FaultScheduler(sim::Simulator& simulator, psu::ArduinoBridge& bridge,
                 psu::PowerSupply& supply, sim::Rng rng)
      : sim_(simulator), bridge_(bridge), supply_(supply), rng_(rng) {}

  FaultScheduler(const FaultScheduler&) = delete;
  FaultScheduler& operator=(const FaultScheduler&) = delete;

  /// Arm a fault: the Off command goes out a uniformly random delay in
  /// [0, jitter] from now. Returns the scheduled command instant.
  sim::TimePoint arm_fault(sim::Duration jitter) {
    const std::int64_t max_ns = jitter.count_ns() > 0 ? jitter.count_ns() : 1;
    const auto delay = sim::Duration::ns(rng_.range(0, max_ns));
    const sim::TimePoint at = sim_.now() + delay;
    sim_.at(at, [this] { command_off(); });
    return at;
  }

  /// Send the Off command immediately (fixed-delay §IV-A campaigns).
  void command_off() {
    ++faults_commanded_;
    bridge_.send(psu::PowerCommand::kOff);
  }

  /// Send the On command immediately (recovery phase).
  void command_on() { bridge_.send(psu::PowerCommand::kOn); }

  /// The rail has fully discharged and the dwell can start.
  [[nodiscard]] bool rail_fully_down() const {
    return supply_.state() == psu::PowerSupply::State::kOff;
  }
  /// The rail is being pulled down (or already down).
  [[nodiscard]] bool fault_in_progress() const {
    return supply_.state() == psu::PowerSupply::State::kDischarging || rail_fully_down();
  }

  /// Instant the current/most recent discharge began (the injected fault).
  [[nodiscard]] sim::TimePoint last_fault_at() const { return supply_.last_off_at(); }

  [[nodiscard]] std::uint32_t faults_commanded() const { return faults_commanded_; }

  /// Session reset: counter rewinds and the fault-timing RNG stream is
  /// replaced (the owner re-forks it from the reseeded master).
  void reset(sim::Rng rng) {
    rng_ = rng;
    faults_commanded_ = 0;
  }

  struct StateImage {
    std::array<std::uint64_t, 4> rng_state{};
    std::uint32_t faults_commanded = 0;
  };
  void snapshot(StateImage& out) const {
    out.rng_state = rng_.state();
    out.faults_commanded = faults_commanded_;
  }
  void restore(const StateImage& image) {
    rng_.set_state(image.rng_state);
    faults_commanded_ = image.faults_commanded;
  }

 private:
  sim::Simulator& sim_;
  psu::ArduinoBridge& bridge_;
  psu::PowerSupply& supply_;
  sim::Rng rng_;
  std::uint32_t faults_commanded_ = 0;
};

}  // namespace pofi::platform
