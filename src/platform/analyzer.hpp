// The Analyzer of the paper's software part.
//
// Consumes request outcomes from the IO generator, keeps the set of
// ACKed-but-not-yet-verified write packets, and after every power cycle
// reads each of them back through the full device stack, comparing content
// tags against the shadow store. Classification follows §III-B exactly:
//
//   completed=1, notApplied=1  ->  FWA   (old data still at the address)
//   completed=1, notApplied=0, checksum mismatch -> data failure
//   completed=0                ->  IO error
//
// A packet with any page that is neither its payload nor the pre-request
// contents is a data failure; all-pages-reverted is an FWA.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "blk/queue.hpp"
#include "platform/shadow_store.hpp"
#include "sim/simulator.hpp"
#include "workload/data_packet.hpp"

namespace pofi::platform {

enum class FailureType : std::uint8_t { kDataFailure, kFwa, kIoError };

[[nodiscard]] constexpr const char* to_string(FailureType t) {
  switch (t) {
    case FailureType::kDataFailure: return "data-failure";
    case FailureType::kFwa: return "FWA";
    case FailureType::kIoError: return "io-error";
  }
  return "?";
}

struct FailureRecord {
  std::uint64_t packet_id = 0;
  FailureType type = FailureType::kDataFailure;
  std::uint32_t fault_index = 0;
  /// ACK-to-fault interval (ms); negative when the packet never ACKed.
  double ack_to_fault_ms = -1.0;
  std::uint32_t pages_garbage = 0;
  std::uint32_t pages_reverted = 0;
  workload::OpType op = workload::OpType::kWrite;
};

struct AnalyzerCounters {
  std::uint64_t data_failures = 0;
  std::uint64_t fwa_failures = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t verified_ok = 0;
  std::uint64_t superseded_skipped = 0;
  std::uint64_t read_mismatches = 0;  ///< live reads that saw wrong data
};

class Analyzer {
 public:
  Analyzer(sim::Simulator& simulator, blk::BlockQueue& queue, ShadowStore& shadow);

  // --- Fed by the IO generator ----------------------------------------------
  /// A write was ACKed; packet enters the pending-verification set.
  void note_acked_write(workload::DataPacket packet);
  /// A request failed (device unavailable / timeout): IO error.
  void note_io_error(const workload::DataPacket& packet);
  /// A live read returned data; cross-check against the shadow store.
  void note_read_result(const workload::DataPacket& packet,
                        std::span<const std::uint64_t> observed);

  // --- Post-power-cycle verification ----------------------------------------
  /// Read back every pending packet and classify. The device must be ready.
  /// `done` fires when the whole pending set has been processed.
  void verify_pending(sim::TimePoint fault_time, std::uint32_t fault_index,
                      std::function<void()> done);
  [[nodiscard]] bool verification_running() const { return verifying_; }

  [[nodiscard]] const AnalyzerCounters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<FailureRecord>& failures() const { return failures_; }
  [[nodiscard]] std::size_t pending_packets() const { return pending_.size(); }

  /// Session reset: drop pending packets, verification state, counters and
  /// the failure log; container capacities are retained.
  void reset() {
    pending_.clear();
    verifying_ = false;
    fault_time_ = sim::TimePoint{};
    fault_index_ = 0;
    done_ = nullptr;
    counters_ = AnalyzerCounters{};
    failures_.clear();
  }

  /// Snapshot precondition: no verification pass in flight.
  [[nodiscard]] bool quiescent() const { return !verifying_; }

  struct StateImage {
    std::deque<workload::DataPacket> pending;
    sim::TimePoint fault_time;
    std::uint32_t fault_index = 0;
    AnalyzerCounters counters;
    std::vector<FailureRecord> failures;
  };
  void snapshot(StateImage& out) const {
    out.pending = pending_;
    out.fault_time = fault_time_;
    out.fault_index = fault_index_;
    out.counters = counters_;
    out.failures = failures_;
  }
  void restore(const StateImage& image) {
    pending_ = image.pending;
    verifying_ = false;
    fault_time_ = image.fault_time;
    fault_index_ = image.fault_index;
    done_ = nullptr;
    counters_ = image.counters;
    failures_ = image.failures;
  }

 private:
  void verify_next();
  void classify(const workload::DataPacket& packet, std::span<const std::uint64_t> observed);

  sim::Simulator& sim_;
  blk::BlockQueue& queue_;
  ShadowStore& shadow_;

  std::deque<workload::DataPacket> pending_;
  bool verifying_ = false;
  sim::TimePoint fault_time_;
  std::uint32_t fault_index_ = 0;
  std::function<void()> done_;

  AnalyzerCounters counters_;
  std::vector<FailureRecord> failures_;
};

}  // namespace pofi::platform
