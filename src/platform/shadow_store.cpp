#include "platform/shadow_store.hpp"

namespace pofi::platform {

std::vector<std::uint64_t> ShadowStore::allocate_tags(std::uint32_t n) {
  std::vector<std::uint64_t> tags;
  tags.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) tags.push_back(next_tag_++);
  return tags;
}

std::uint64_t ShadowStore::expected(ftl::Lpn lpn) const {
  const auto it = truth_.find(lpn);
  return it == truth_.end() ? nand::kErasedContent : it->second.expected;
}

bool ShadowStore::acceptable(ftl::Lpn lpn, std::uint64_t tag) const {
  const auto it = truth_.find(lpn);
  if (it == truth_.end()) return tag == nand::kErasedContent;
  if (tag == it->second.expected) return true;
  return it->second.indeterminate && tag == it->second.alternate;
}

void ShadowStore::commit_write(ftl::Lpn lpn, std::span<const std::uint64_t> tags) {
  for (std::size_t i = 0; i < tags.size(); ++i) {
    PageTruth& t = truth_[lpn + i];
    t.expected = tags[i];
    t.indeterminate = false;
    t.alternate = nand::kErasedContent;
  }
}

void ShadowStore::mark_indeterminate(ftl::Lpn lpn, std::span<const std::uint64_t> tags) {
  for (std::size_t i = 0; i < tags.size(); ++i) {
    PageTruth& t = truth_[lpn + i];
    t.indeterminate = true;
    t.alternate = tags[i];
  }
}

void ShadowStore::observe(ftl::Lpn lpn, std::uint64_t tag) {
  PageTruth& t = truth_[lpn];
  t.expected = tag;
  t.indeterminate = false;
  t.alternate = nand::kErasedContent;
}

}  // namespace pofi::platform
