// CampaignSuite: run a batch of fault-injection campaigns and aggregate the
// results — the workhorse behind parameter sweeps (one entry per figure
// point) and fleet studies (one entry per drive).
//
// Each entry runs on a just-constructed-equivalent TestPlatform (campaigns
// must not share device history): by default a pooled per-worker stack reset
// in place between entries (RunnerConfig::session_reuse), with a fresh build
// per entry as the fallback/baseline. The suite renders a comparison table /
// CSV at the end.
//
// Execution is delegated to runner::CampaignRunner: the default run_all()
// uses one thread (bit-identical to the historical sequential loop), and the
// RunnerConfig overload fans entries out over a worker pool. Results are
// deterministic at any thread count because every entry's seed is fixed at
// add() time, never at execution time.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "platform/experiment.hpp"
#include "platform/test_platform.hpp"
#include "runner/campaign_runner.hpp"
#include "stats/csv.hpp"

namespace pofi::platform {

class CampaignSuite {
 public:
  /// `master_seed` shards per-entry seeds for entries whose spec leaves
  /// ExperimentSpec::seed at its default (see add()).
  explicit CampaignSuite(PlatformConfig platform_config = {},
                         std::uint64_t master_seed = 42)
      : platform_config_(platform_config), master_seed_(master_seed) {}

  /// Queue one campaign. `label` names the row in the summary.
  ///
  /// Seed policy: a spec whose seed was left at the ExperimentSpec default
  /// receives sim::derive_seed(master_seed, entry_index) instead — without
  /// this, every defaulted entry would share seed 42 and fleet rows would be
  /// accidentally correlated. Set spec.seed explicitly (to anything, even
  /// the default value via a distinct master) to pin it.
  CampaignSuite& add(std::string label, ssd::SsdConfig drive, ExperimentSpec spec);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  struct Row {
    std::string label;
    ExperimentResult result;
  };

  /// Execute every queued campaign sequentially on the calling thread
  /// (equivalent to run_all({.threads = 1})).
  [[nodiscard]] std::vector<Row> run_all();

  /// Execute on a worker pool per `config`, reporting progress to `sink`
  /// (may be null). Rows come back in submission order and are bit-identical
  /// at any thread count. Throws std::runtime_error if a campaign failed;
  /// entries cancelled by fail-fast are omitted from the rows. Use
  /// run_outcomes() to inspect per-campaign statuses instead.
  [[nodiscard]] std::vector<Row> run_all(const runner::RunnerConfig& config,
                                         runner::ProgressSink* sink = nullptr);

  /// Like run_all(config, sink) but never throws on campaign failure:
  /// returns the full per-campaign outcome vector (status, wall time, error).
  [[nodiscard]] std::vector<runner::CampaignRunner::Outcome> run_outcomes(
      const runner::RunnerConfig& config, runner::ProgressSink* sink = nullptr);

  /// Render rows as an aligned comparison table.
  [[nodiscard]] static std::string summary_table(const std::vector<Row>& rows);

  /// Export rows as CSV (one row per campaign).
  [[nodiscard]] static stats::CsvWriter to_csv(const std::vector<Row>& rows);

 private:
  struct Entry {
    std::string label;
    ssd::SsdConfig drive;
    ExperimentSpec spec;
  };
  PlatformConfig platform_config_;
  std::uint64_t master_seed_;
  std::vector<Entry> entries_;
};

}  // namespace pofi::platform
