// CampaignSuite: run a batch of fault-injection campaigns and aggregate the
// results — the workhorse behind parameter sweeps (one entry per figure
// point) and fleet studies (one entry per drive).
//
// Each entry gets a fresh TestPlatform (campaigns must not share device
// history), and the suite renders a comparison table / CSV at the end.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "platform/experiment.hpp"
#include "platform/test_platform.hpp"
#include "stats/csv.hpp"

namespace pofi::platform {

class CampaignSuite {
 public:
  explicit CampaignSuite(PlatformConfig platform_config = {})
      : platform_config_(platform_config) {}

  /// Queue one campaign. `label` names the row in the summary.
  CampaignSuite& add(std::string label, ssd::SsdConfig drive, ExperimentSpec spec);

  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  struct Row {
    std::string label;
    ExperimentResult result;
  };

  /// Execute every queued campaign (sequentially, fresh platform each).
  [[nodiscard]] std::vector<Row> run_all();

  /// Render rows as an aligned comparison table.
  [[nodiscard]] static std::string summary_table(const std::vector<Row>& rows);

  /// Export rows as CSV (one row per campaign).
  [[nodiscard]] static stats::CsvWriter to_csv(const std::vector<Row>& rows);

 private:
  struct Entry {
    std::string label;
    ssd::SsdConfig drive;
    ExperimentSpec spec;
  };
  PlatformConfig platform_config_;
  std::vector<Entry> entries_;
};

}  // namespace pofi::platform
