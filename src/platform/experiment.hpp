// Experiment specification and results.
//
// One ExperimentSpec describes a full fault-injection campaign: the workload
// to run, how many faults to inject and how the faults are timed. Results
// aggregate the three failure classes plus the raw failure records used for
// the interval analysis (§IV-A) and the IOPS measurements (Fig. 8).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/snapshot.hpp"
#include "platform/analyzer.hpp"
#include "sim/time.hpp"
#include "workload/workload.hpp"

namespace pofi::platform {

enum class FaultMode : std::uint8_t {
  /// Faults land at random instants while the workload runs (default; the
  /// paper's Scheduler picks "random time instances").
  kRandomDuringWorkload,
  /// §IV-A: one write, wait for its ACK, cut power a fixed delay later.
  kFixedDelayAfterAck,
};

struct ExperimentSpec {
  std::string name = "experiment";
  workload::WorkloadConfig workload;
  std::uint64_t total_requests = 16'000;
  std::uint32_t faults = 200;
  FaultMode mode = FaultMode::kRandomDuringWorkload;
  /// kFixedDelayAfterAck: ACK-to-fault interval under test.
  sim::Duration post_ack_delay = sim::Duration::ms(0);
  /// Extra random delay after the per-cycle request budget is reached
  /// before the Off command goes out (keeps fault instants random).
  sim::Duration fault_jitter = sim::Duration::ms(200);
  /// Submission pacing when the workload has no target_iops of its own:
  /// requests arrive Poisson at this rate, matching the measured cadence of
  /// the paper's generator. <= 0 switches to device-limited closed loop.
  double pace_iops = 5.0;
  std::uint64_t seed = 42;
};

struct ExperimentResult {
  std::string name;
  std::uint64_t requests_submitted = 0;
  std::uint64_t write_acks = 0;
  std::uint64_t reads_completed = 0;
  std::uint32_t faults_injected = 0;

  std::uint64_t data_failures = 0;
  std::uint64_t fwa_failures = 0;
  std::uint64_t io_errors = 0;
  std::uint64_t verified_ok = 0;
  std::uint64_t read_mismatches = 0;

  double requested_iops = 0.0;   ///< open-loop target (0 for closed loop)
  double responded_iops = 0.0;   ///< completions per second of active time
  double mean_latency_us = 0.0;  ///< Q2C of successful requests
  double max_latency_us = 0.0;
  double active_seconds = 0.0;   ///< workload-on wall time (virtual)
  double sim_seconds = 0.0;      ///< total virtual time of the campaign

  /// All failure records (Δt histograms, per-type breakdowns).
  std::vector<FailureRecord> failures;

  // Device-side diagnostics.
  std::uint64_t cache_dirty_lost = 0;
  std::uint64_t interrupted_programs = 0;
  std::uint64_t paired_page_upsets = 0;
  std::uint64_t map_updates_reverted = 0;
  std::uint64_t uncorrectable_reads = 0;
  /// Recovery-invariant violations found by the torture auditor (0 outside
  /// torture runs). Non-zero resolves the campaign entry to kAuditFailed.
  std::uint64_t audit_violations = 0;

  /// Telemetry snapshot taken at campaign end when the platform was built
  /// with metrics collection on (PlatformConfig::metrics); empty otherwise.
  /// Deliberately excluded from determinism hashing — the campaign rows
  /// above must be bit-identical with metrics on or off.
  obs::Snapshot metrics;

  [[nodiscard]] std::uint64_t total_data_loss() const { return data_failures + fwa_failures; }
  [[nodiscard]] double data_failures_per_fault() const {
    return faults_injected == 0
               ? 0.0
               : static_cast<double>(total_data_loss()) / faults_injected;
  }
};

}  // namespace pofi::platform
