#include "platform/analyzer.hpp"

#include <utility>

#include "sim/log.hpp"

namespace pofi::platform {

Analyzer::Analyzer(sim::Simulator& simulator, blk::BlockQueue& queue, ShadowStore& shadow)
    : sim_(simulator), queue_(queue), shadow_(shadow) {}

void Analyzer::note_acked_write(workload::DataPacket packet) {
  packet.modified = true;
  pending_.push_back(std::move(packet));
}

void Analyzer::note_io_error(const workload::DataPacket& packet) {
  ++counters_.io_errors;
  FailureRecord rec;
  rec.packet_id = packet.packet_id;
  rec.type = FailureType::kIoError;
  rec.fault_index = fault_index_;
  rec.op = packet.op;
  failures_.push_back(rec);
}

void Analyzer::note_read_result(const workload::DataPacket& packet,
                                std::span<const std::uint64_t> observed) {
  for (std::size_t i = 0; i < observed.size(); ++i) {
    if (!shadow_.acceptable(packet.address + i, observed[i])) {
      ++counters_.read_mismatches;
      return;
    }
  }
}

void Analyzer::verify_pending(sim::TimePoint fault_time, std::uint32_t fault_index,
                              std::function<void()> done) {
  fault_time_ = fault_time;
  fault_index_ = fault_index;
  done_ = std::move(done);
  verifying_ = true;
  verify_next();
}

void Analyzer::verify_next() {
  // Skip packets that were superseded by later ACKed writes: their payload
  // is legitimately gone and cannot be verified any more.
  while (!pending_.empty()) {
    const workload::DataPacket& p = pending_.front();
    bool superseded = false;
    for (std::size_t i = 0; i < p.page_tags.size(); ++i) {
      if (shadow_.expected(p.address + i) != p.page_tags[i]) {
        superseded = true;
        break;
      }
    }
    if (!superseded) break;
    ++counters_.superseded_skipped;
    pending_.pop_front();
  }

  if (pending_.empty()) {
    verifying_ = false;
    if (done_) {
      auto cb = std::move(done_);
      done_ = nullptr;
      cb();
    }
    return;
  }

  workload::DataPacket packet = std::move(pending_.front());
  pending_.pop_front();
  queue_.submit_read(
      packet.address, packet.size_pages,
      [this, packet = std::move(packet)](blk::RequestOutcome out) {
        if (out.status == blk::IoStatus::kOk) {
          classify(packet, out.read_contents);
        } else {
          // Device fell over during verification (should not happen in a
          // normal campaign); count it as an IO error and move on.
          note_io_error(packet);
        }
        verify_next();
      });
}

void Analyzer::classify(const workload::DataPacket& packet,
                        std::span<const std::uint64_t> observed) {
  std::uint32_t garbage = 0;
  std::uint32_t reverted = 0;
  std::uint32_t intact = 0;
  for (std::size_t i = 0; i < packet.size_pages && i < observed.size(); ++i) {
    const std::uint64_t seen = observed[i];
    if (seen == packet.page_tags[i]) {  // durable and correct
      ++intact;
      continue;
    }
    if (seen == packet.initial_page_tags[i]) {
      ++reverted;
    } else {
      ++garbage;
    }
    shadow_.observe(packet.address + i, seen);
  }

  const double delta_ms = (fault_time_ - packet.complete_time).to_ms();
  // Request-level classification, as the paper's checksum triple does it:
  // the read-back checksum equals the payload (ok), equals the pre-request
  // contents (FWA / notApplied), or equals neither — including *partially
  // applied* requests — which is a data failure.
  if (garbage > 0 || (reverted > 0 && intact > 0)) {
    ++counters_.data_failures;
    FailureRecord rec;
    rec.packet_id = packet.packet_id;
    rec.type = FailureType::kDataFailure;
    rec.fault_index = fault_index_;
    rec.ack_to_fault_ms = delta_ms;
    rec.pages_garbage = garbage;
    rec.pages_reverted = reverted;
    rec.op = packet.op;
    failures_.push_back(rec);
  } else if (reverted > 0) {
    ++counters_.fwa_failures;
    FailureRecord rec;
    rec.packet_id = packet.packet_id;
    rec.type = FailureType::kFwa;
    rec.fault_index = fault_index_;
    rec.ack_to_fault_ms = delta_ms;
    rec.pages_reverted = reverted;
    rec.op = packet.op;
    failures_.push_back(rec);
  } else {
    ++counters_.verified_ok;
  }
}

}  // namespace pofi::platform
