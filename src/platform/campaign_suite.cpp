#include "platform/campaign_suite.hpp"

#include <stdexcept>

#include "runner/experiment_session.hpp"
#include "sim/rng.hpp"
#include "stats/table.hpp"

namespace pofi::platform {

CampaignSuite& CampaignSuite::add(std::string label, ssd::SsdConfig drive,
                                  ExperimentSpec spec) {
  if (spec.seed == ExperimentSpec{}.seed) {
    spec.seed = sim::derive_seed(master_seed_, entries_.size());
  }
  entries_.push_back(Entry{std::move(label), std::move(drive), std::move(spec)});
  return *this;
}

std::vector<CampaignSuite::Row> CampaignSuite::run_all() {
  runner::RunnerConfig sequential;
  sequential.threads = 1;
  return run_all(sequential);
}

std::vector<runner::CampaignRunner::Outcome> CampaignSuite::run_outcomes(
    const runner::RunnerConfig& config, runner::ProgressSink* sink) {
  runner::CampaignRunner engine(config, sink);
  for (const Entry& e : entries_) {
    if (config.session_reuse) {
      // Pooled path: one device stack per worker, reset in place between
      // entries (rebuilt automatically when an entry's drive differs).
      // Bit-identical to the build-per-entry path below.
      engine.add(e.label, [this, &e](runner::SessionSlot& slot) {
        TestPlatform& platform = runner::ExperimentSession::acquire(
            slot, e.drive, platform_config_, e.spec.seed);
        return platform.run(e.spec);
      });
    } else {
      engine.add(e.label, [this, &e] {
        TestPlatform platform(e.drive, platform_config_, e.spec.seed);
        return platform.run(e.spec);
      });
    }
  }
  return engine.run();
}

std::vector<CampaignSuite::Row> CampaignSuite::run_all(const runner::RunnerConfig& config,
                                                       runner::ProgressSink* sink) {
  auto outcomes = run_outcomes(config, sink);
  std::vector<Row> rows;
  rows.reserve(outcomes.size());
  for (auto& o : outcomes) {
    switch (o.status) {
      case runner::CampaignStatus::kOk:
      case runner::CampaignStatus::kRetriedOk:
      case runner::CampaignStatus::kTimedOut:
      case runner::CampaignStatus::kSkippedCached:
        rows.push_back(Row{std::move(o.label), std::move(o.result)});
        break;
      case runner::CampaignStatus::kFailed:
        throw std::runtime_error("campaign '" + o.label + "' failed: " + o.error);
      case runner::CampaignStatus::kQuarantined:
        throw std::runtime_error("campaign '" + o.label + "' quarantined after " +
                                 std::to_string(o.attempts) + " attempt(s): " + o.error);
      case runner::CampaignStatus::kCancelled:
      case runner::CampaignStatus::kSkipped:
      case runner::CampaignStatus::kPending:
        break;  // fail-fast or cancellation stopped it before it finished
    }
  }
  return rows;
}

std::string CampaignSuite::summary_table(const std::vector<Row>& rows) {
  stats::Table table({"campaign", "faults", "requests", "data failures", "FWA", "IO errors",
                      "loss/fault", "mean Q2C us"});
  for (const Row& row : rows) {
    const ExperimentResult& r = row.result;
    table.add_row({row.label, stats::Table::fmt(std::uint64_t{r.faults_injected}),
                   stats::Table::fmt(r.requests_submitted), stats::Table::fmt(r.data_failures),
                   stats::Table::fmt(r.fwa_failures), stats::Table::fmt(r.io_errors),
                   stats::Table::fmt(r.data_failures_per_fault(), 2),
                   stats::Table::fmt(r.mean_latency_us, 0)});
  }
  return table.render();
}

stats::CsvWriter CampaignSuite::to_csv(const std::vector<Row>& rows) {
  stats::CsvWriter csv({"campaign", "faults", "requests", "write_acks", "data_failures",
                        "fwa", "io_errors", "verified_ok", "loss_per_fault",
                        "mean_latency_us", "sim_seconds"});
  for (const Row& row : rows) {
    const ExperimentResult& r = row.result;
    csv.add_row({row.label, stats::Table::fmt(std::uint64_t{r.faults_injected}),
                 stats::Table::fmt(r.requests_submitted), stats::Table::fmt(r.write_acks),
                 stats::Table::fmt(r.data_failures), stats::Table::fmt(r.fwa_failures),
                 stats::Table::fmt(r.io_errors), stats::Table::fmt(r.verified_ok),
                 stats::Table::fmt(r.data_failures_per_fault(), 4),
                 stats::Table::fmt(r.mean_latency_us, 1),
                 stats::Table::fmt(r.sim_seconds, 2)});
  }
  return csv;
}

}  // namespace pofi::platform
