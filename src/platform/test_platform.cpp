#include "platform/test_platform.hpp"

#include <cassert>

#include "obs/metrics.hpp"
#include "sim/log.hpp"
#include "workload/checksum.hpp"

namespace pofi::platform {

using psu::PowerCommand;
using workload::DataPacket;
using workload::OpType;
using workload::RequestSpec;

TestPlatform::TestPlatform(ssd::SsdConfig ssd_config, PlatformConfig platform_config,
                           std::uint64_t seed)
    : sim_(seed),
      ssd_config_(std::move(ssd_config)),
      config_(platform_config),
      rng_(sim_.fork_rng("platform")) {
  sim_.set_step_limit(config_.max_sim_events);
  sim_.set_cancel_token(config_.cancel);
  if (config_.metrics) {
    // Attach before any component constructs so every layer registers its
    // metrics; with POFI_OBS=OFF sim_.metrics() stays nullptr regardless.
    metrics_ = std::make_unique<obs::MetricRegistry>();
    sim_.set_metrics(metrics_.get());
  }
  psu_ = std::make_unique<psu::PowerSupply>(sim_, psu::make_discharge_model(config_.discharge),
                                            config_.psu);
  atx_ = std::make_unique<psu::AtxController>(*psu_);
  bridge_ = std::make_unique<psu::ArduinoBridge>(sim_, *atx_, config_.arduino);
  ssd_ = std::make_unique<ssd::Ssd>(sim_, ssd_config_);
  psu_->attach(*ssd_);
  queue_ = std::make_unique<blk::BlockQueue>(sim_, *ssd_, config_.block_queue);
  queue_->trace().set_enabled(config_.trace_enabled);
  analyzer_ = std::make_unique<Analyzer>(sim_, *queue_, shadow_);
  scheduler_ =
      std::make_unique<FaultScheduler>(sim_, *bridge_, *psu_, sim_.fork_rng("scheduler"));
}

TestPlatform::~TestPlatform() = default;

bool TestPlatform::compatible_with(const ssd::SsdConfig& drive,
                                   const PlatformConfig& platform_config) const {
  return ssd_config_ == drive && config_.discharge == platform_config.discharge &&
         config_.psu == platform_config.psu && config_.arduino == platform_config.arduino &&
         config_.block_queue == platform_config.block_queue &&
         config_.metrics == platform_config.metrics;
}

void TestPlatform::reset(const PlatformConfig& platform_config, std::uint64_t seed) {
  assert(compatible_with(ssd_config_, platform_config));
  config_ = platform_config;
  // Constructor order: simulator state first, then components top-down.
  sim_.reset(seed);
  sim_.set_step_limit(config_.max_sim_events);
  sim_.set_cancel_token(config_.cancel);
  if (metrics_) metrics_->reset_values();
  rng_ = sim_.fork_rng("platform");
  psu_->reset();
  atx_->reset();
  bridge_->reset();
  ssd_->reset();
  queue_->reset();
  queue_->trace().set_enabled(config_.trace_enabled);
  shadow_.reset();
  analyzer_->reset();
  scheduler_->reset(sim_.fork_rng("scheduler"));
  // generator_ adopts the next run()'s workload in place.
  io_active_ = false;
  ran_ = false;
  open_loop_mode_ = true;
  pace_iops_ = 5.0;
  next_packet_id_ = 1;
  requests_submitted_ = 0;
  cycle_requests_ = 0;
  cycle_budget_ = 0;
  write_acks_ = 0;
  reads_completed_ = 0;
  fault_index_ = 0;
}

void TestPlatform::snapshot(StateImage& out) const {
  assert(quiescent() && "snapshot requires a quiescent platform");
  sim_.snapshot(out.sim);
  psu_->snapshot(out.psu);
  atx_->snapshot(out.atx);
  bridge_->snapshot(out.bridge);
  ssd_->snapshot(out.ssd);
  queue_->snapshot(out.blk);
  shadow_.snapshot(out.shadow);
  analyzer_->snapshot(out.analyzer);
  scheduler_->snapshot(out.scheduler);
  out.platform_rng = rng_.state();
  out.has_metrics = metrics_ != nullptr;
  if (metrics_) metrics_->snapshot_values(out.metrics);
  out.io_active = io_active_;
  out.ran = ran_;
  out.open_loop_mode = open_loop_mode_;
  out.pace_iops = pace_iops_;
  out.next_packet_id = next_packet_id_;
  out.requests_submitted = requests_submitted_;
  out.cycle_requests = cycle_requests_;
  out.cycle_budget = cycle_budget_;
  out.write_acks = write_acks_;
  out.reads_completed = reads_completed_;
  out.fault_index = fault_index_;
}

void TestPlatform::restore(const StateImage& image, sim::TimerRearmer& rearm) {
  // Simulator first: clearing its queue guarantees no event from the old
  // lifetime fires into the restored stack (mirrors reset() ordering).
  sim_.restore(image.sim);
  sim_.set_step_limit(config_.max_sim_events);
  sim_.set_cancel_token(config_.cancel);
  if (metrics_) metrics_->restore_values(image.metrics);
  rng_.set_state(image.platform_rng);
  psu_->restore(image.psu);
  atx_->restore(image.atx);
  bridge_->restore(image.bridge);
  ssd_->restore(image.ssd, rearm);
  queue_->restore(image.blk);
  shadow_.restore(image.shadow);
  analyzer_->restore(image.analyzer);
  scheduler_->restore(image.scheduler);
  io_active_ = image.io_active;
  ran_ = image.ran;
  open_loop_mode_ = image.open_loop_mode;
  pace_iops_ = image.pace_iops;
  next_packet_id_ = image.next_packet_id;
  requests_submitted_ = image.requests_submitted;
  cycle_requests_ = image.cycle_requests;
  cycle_budget_ = image.cycle_budget;
  write_acks_ = image.write_acks;
  reads_completed_ = image.reads_completed;
  fault_index_ = image.fault_index;
}

void TestPlatform::run_while(const std::function<bool()>& pred, std::uint64_t max_events) {
  std::uint64_t fired = 0;
  while (pred()) {
    if (sim_.idle()) break;
    sim_.run_all(1);
    if (max_events != 0 && ++fired >= max_events) break;
  }
}

// --------------------------------------------------------------- IO engine

void TestPlatform::start_io() {
  io_active_ = true;
  cycle_requests_ = 0;
  double rate = generator_->config().target_iops;
  if (rate <= 0.0) rate = pace_iops_;
  open_loop_mode_ = rate > 0.0;
  if (open_loop_mode_) {
    // Open loop: Poisson arrivals at the chosen rate.
    open_loop_step(1.0 / rate);
  } else {
    // Closed loop: `depth` independent request chains, device-limited.
    for (std::uint32_t i = 0; i < config_.closed_loop_depth; ++i) {
      sim_.after(sim::Duration::us(static_cast<std::int64_t>(i)), [this] { io_chain_step(); });
    }
  }
}

void TestPlatform::open_loop_step(double mean_gap_sec) {
  if (!io_active_) return;
  // The generator does not know about the fault schedule: it keeps issuing
  // even as the rail dies (that is the paper's IO-error channel). It stops
  // once it observes an error (handle_outcome clears io_active_).
  if (cycle_requests_ < cycle_budget_) {
    submit_one(generator_->next());
  }
  sim_.after(sim::Duration::sec_f(rng_.exponential(mean_gap_sec)),
             [this, mean_gap_sec] { open_loop_step(mean_gap_sec); });
}

void TestPlatform::stop_io() { io_active_ = false; }

void TestPlatform::io_chain_step() {
  if (!io_active_ || !ssd_->ready()) return;     // chain ends at device death
  if (cycle_requests_ >= cycle_budget_) return;  // per-cycle ceiling reached
  submit_one(generator_->next());
}

void TestPlatform::submit_one(RequestSpec spec) {
  ++requests_submitted_;
  ++cycle_requests_;

  DataPacket p;
  p.packet_id = next_packet_id_++;
  p.op = spec.op;
  p.address = spec.lpn;
  p.size_pages = spec.pages;
  p.queue_time = sim_.now();

  if (spec.op == OpType::kWrite) {
    p.page_tags = shadow_.allocate_tags(spec.pages);
    p.initial_page_tags.reserve(spec.pages);
    for (std::uint32_t i = 0; i < spec.pages; ++i) {
      p.initial_page_tags.push_back(shadow_.expected(spec.lpn + i));
    }
    p.data_checksum = workload::combine_tags(p.page_tags);
    p.initial_checksum = workload::combine_tags(p.initial_page_tags);
    auto tags_copy = p.page_tags;
    queue_->submit_write(spec.lpn, std::move(tags_copy),
                         [this, p = std::move(p)](blk::RequestOutcome out) mutable {
                           handle_outcome(std::move(p), std::move(out));
                         });
  } else {
    queue_->submit_read(spec.lpn, spec.pages,
                        [this, p = std::move(p)](blk::RequestOutcome out) mutable {
                          handle_outcome(std::move(p), std::move(out));
                        });
  }
}

void TestPlatform::handle_outcome(DataPacket packet, blk::RequestOutcome out) {
  const bool closed_loop = !open_loop_mode_;
  if (out.status == blk::IoStatus::kOk) {
    packet.complete_time = out.finished_at;
    packet.modified = true;
    if (packet.op == OpType::kWrite) {
      ++write_acks_;
      shadow_.commit_write(packet.address, packet.page_tags);
      analyzer_->note_acked_write(std::move(packet));
    } else {
      ++reads_completed_;
      packet.final_checksum = workload::combine_tags(out.read_contents);
      analyzer_->note_read_result(packet, out.read_contents);
    }
    if (closed_loop) {
      sim_.after(config_.think_time, [this] { io_chain_step(); });
    }
  } else {
    packet.not_issued = true;
    analyzer_->note_io_error(packet);
    if (packet.op == OpType::kWrite) {
      shadow_.mark_indeterminate(packet.address, packet.page_tags);
    }
    // First observed error: the generator realises the device is gone and
    // stops issuing (closed-loop chains end by simply not respawning).
    io_active_ = false;
  }
}

// --------------------------------------------------------------- campaigns

ExperimentResult TestPlatform::run(const ExperimentSpec& spec) {
  assert(!ran_ && "a TestPlatform runs exactly one campaign");
  ran_ = true;
  pace_iops_ = spec.pace_iops;
  if (generator_) {
    generator_->reset(spec.workload, sim_.fork_rng("workload"));
  } else {
    generator_ = std::make_unique<workload::WorkloadGenerator>(spec.workload,
                                                               sim_.fork_rng("workload"));
  }

  ExperimentResult result;
  result.name = spec.name;
  result.requested_iops = spec.workload.target_iops;

  // Initial power-up and mount.
  scheduler_->command_on();
  run_while([&] { return !ssd_->ready(); });

  if (spec.mode == FaultMode::kRandomDuringWorkload) {
    run_random_fault_campaign(spec, result);
  } else {
    run_fixed_delay_campaign(spec, result);
  }

  result.requests_submitted = requests_submitted_;
  result.write_acks = write_acks_;
  result.reads_completed = reads_completed_;
  const AnalyzerCounters& c = analyzer_->counters();
  result.data_failures = c.data_failures;
  result.fwa_failures = c.fwa_failures;
  result.io_errors = c.io_errors;
  result.verified_ok = c.verified_ok;
  result.read_mismatches = c.read_mismatches;
  result.failures = analyzer_->failures();
  result.cache_dirty_lost = ssd_->cache().stats().dirty_lost_on_power_failure;
  result.interrupted_programs = ssd_->chip().stats().interrupted_programs;
  result.paired_page_upsets = ssd_->chip().stats().paired_page_upsets;
  result.map_updates_reverted = ssd_->ftl().stats().map_updates_reverted;
  result.uncorrectable_reads = ssd_->chip().stats().uncorrectable_reads;
  result.sim_seconds = sim_.now().to_sec();
  result.mean_latency_us = queue_->stats().latency_us.mean();
  result.max_latency_us = queue_->stats().latency_us.max();
  if (result.active_seconds > 0.0) {
    result.responded_iops =
        static_cast<double>(write_acks_ + reads_completed_) / result.active_seconds;
  }
  if (metrics_) result.metrics = metrics_->snapshot();
  return result;
}

void TestPlatform::power_cycle_and_verify(ExperimentResult& result,
                                          sim::TimePoint fault_command_time) {
  // Ride the discharge curve all the way down.
  run_while([&] { return !scheduler_->rail_fully_down(); });
  stop_io();
  sim_.run_for(config_.post_fault_dwell);

  scheduler_->command_on();
  run_while([&] { return !ssd_->ready(); });

  bool verified = false;
  analyzer_->verify_pending(fault_command_time, fault_index_, [&verified] { verified = true; });
  run_while([&] { return !verified; });
  ++result.faults_injected;
  if (config_.trace_enabled) queue_->trace().clear();
}

void TestPlatform::run_random_fault_campaign(const ExperimentSpec& spec,
                                             ExperimentResult& result) {
  const std::uint64_t budget_per_cycle =
      std::max<std::uint64_t>(1, spec.total_requests / std::max(1u, spec.faults));
  for (fault_index_ = 0; fault_index_ < spec.faults; ++fault_index_) {
    cycle_budget_ = budget_per_cycle * 2;  // hard ceiling per cycle
    const sim::TimePoint io_start = sim_.now();
    start_io();
    run_while([&] { return cycle_requests_ < budget_per_cycle && io_active_; });

    // Scheduler: the fault lands a random beat after the budget is reached.
    scheduler_->arm_fault(spec.fault_jitter);
    run_while([&] { return !scheduler_->fault_in_progress(); });
    const sim::TimePoint fault_time = scheduler_->last_fault_at();
    result.active_seconds += (fault_time - io_start).to_sec();

    power_cycle_and_verify(result, fault_time);
  }
}

void TestPlatform::run_fixed_delay_campaign(const ExperimentSpec& spec,
                                            ExperimentResult& result) {
  cycle_budget_ = ~0ULL;
  for (fault_index_ = 0; fault_index_ < spec.faults; ++fault_index_) {
    // One write request, forced regardless of the workload's read fraction.
    RequestSpec rs = generator_->next();
    rs.op = OpType::kWrite;
    io_active_ = true;
    const std::uint64_t acks_before = write_acks_;
    submit_one(rs);
    run_while([&] { return write_acks_ == acks_before; });
    if (write_acks_ == acks_before) break;  // write never ACKed; give up

    // Let exactly post_ack_delay elapse after the ACK, then cut power.
    sim_.run_for(spec.post_ack_delay);
    scheduler_->command_off();
    run_while([&] { return !scheduler_->fault_in_progress(); });
    const sim::TimePoint fault_time = scheduler_->last_fault_at();
    result.active_seconds += spec.post_ack_delay.to_sec();

    power_cycle_and_verify(result, fault_time);
  }
}

}  // namespace pofi::platform
