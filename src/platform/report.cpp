#include "platform/report.hpp"

#include <cstdarg>
#include <cstdio>

#include "stats/summary.hpp"

namespace pofi::platform {

namespace {

void appendf(std::string& out, const char* fmt, ...) __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  std::va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  out += buf;
}

}  // namespace

std::string format_report(const ExperimentResult& r, const ReportOptions& options) {
  std::string out;
  appendf(out, "experiment            : %s\n", r.name.c_str());
  appendf(out, "requests submitted    : %llu (%llu write ACKs, %llu reads)\n",
          static_cast<unsigned long long>(r.requests_submitted),
          static_cast<unsigned long long>(r.write_acks),
          static_cast<unsigned long long>(r.reads_completed));
  appendf(out, "power faults injected : %u over %.1f s simulated\n", r.faults_injected,
          r.sim_seconds);
  if (r.requested_iops > 0.0) {
    appendf(out, "requested / responded : %.0f / %.0f IOPS\n", r.requested_iops,
            r.responded_iops);
  } else if (r.responded_iops > 0.0) {
    appendf(out, "responded IOPS        : %.0f\n", r.responded_iops);
  }
  if (r.mean_latency_us > 0.0) {
    appendf(out, "request latency (Q2C)  : mean %.0f us, max %.0f us\n", r.mean_latency_us,
            r.max_latency_us);
  }
  out += "\nfailures (SecIII-B taxonomy)\n";
  appendf(out, "  data failures       : %llu (checksum matches neither payload nor prior)\n",
          static_cast<unsigned long long>(r.data_failures));
  appendf(out, "  false write-acks    : %llu (ACKed, old data back at the address)\n",
          static_cast<unsigned long long>(r.fwa_failures));
  appendf(out, "  IO errors           : %llu (issued while device unavailable)\n",
          static_cast<unsigned long long>(r.io_errors));
  appendf(out, "  verified intact     : %llu\n",
          static_cast<unsigned long long>(r.verified_ok));
  appendf(out, "  data loss per fault : %.2f\n", r.data_failures_per_fault());

  if (options.include_interval_histogram) {
    stats::Histogram hist(0.0, options.histogram_max_ms, options.histogram_bins);
    std::uint64_t losses = 0;
    for (const auto& f : r.failures) {
      if (f.type == FailureType::kIoError || f.ack_to_fault_ms < 0.0) continue;
      hist.add(f.ack_to_fault_ms);
      ++losses;
    }
    if (losses > 0) {
      out += "\nACK-to-fault interval of lost requests (SecIV-A)\n";
      const double bin_ms = options.histogram_max_ms / options.histogram_bins;
      for (std::size_t b = 0; b < hist.bins().size(); ++b) {
        appendf(out, "  %4.0f-%4.0f ms  %-5llu ", b * bin_ms, (b + 1) * bin_ms,
                static_cast<unsigned long long>(hist.bins()[b]));
        const auto stars =
            static_cast<int>(40.0 * static_cast<double>(hist.bins()[b]) /
                             static_cast<double>(losses));
        for (int s = 0; s < stars; ++s) out += '*';
        out += '\n';
      }
      appendf(out, "  p95 interval: %.0f ms\n", hist.quantile(0.95));
    }
  }

  if (options.include_mechanisms) {
    out += "\nmechanism counters\n";
    appendf(out, "  dirty cache pages lost    : %llu\n",
            static_cast<unsigned long long>(r.cache_dirty_lost));
    appendf(out, "  map updates reverted      : %llu\n",
            static_cast<unsigned long long>(r.map_updates_reverted));
    appendf(out, "  interrupted programs      : %llu\n",
            static_cast<unsigned long long>(r.interrupted_programs));
    appendf(out, "  paired-page upsets        : %llu\n",
            static_cast<unsigned long long>(r.paired_page_upsets));
    appendf(out, "  uncorrectable reads (ECC) : %llu\n",
            static_cast<unsigned long long>(r.uncorrectable_reads));
  }

  if (!options.spec_hash.empty() || !options.version.empty()) {
    out += "\nprovenance\n";
    if (!options.spec_hash.empty()) {
      appendf(out, "  spec hash : %s\n", options.spec_hash.c_str());
    }
    if (!options.version.empty()) {
      appendf(out, "  build     : %s\n", options.version.c_str());
    }
  }
  return out;
}

}  // namespace pofi::platform
