// TestPlatform: the complete hardware/software co-designed testbed of Fig. 1.
//
// Wires Host System (block queue + software parts) -> Arduino bridge -> ATX
// controller -> PSU -> SSD, and exposes run(): a full fault-injection
// campaign executing the paper's loop — generate IO, schedule a fault, ride
// the discharge down, power back up, verify with the Analyzer.
//
// The runner drives the simulator from outside the event loop, which keeps
// the campaign logic linear and the event graph free of control-flow knots.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "blk/queue.hpp"
#include "obs/fwd.hpp"
#include "obs/metrics.hpp"
#include "platform/analyzer.hpp"
#include "platform/experiment.hpp"
#include "platform/fault_scheduler.hpp"
#include "platform/shadow_store.hpp"
#include "psu/atx_control.hpp"
#include "psu/power_supply.hpp"
#include "sim/simulator.hpp"
#include "ssd/presets.hpp"
#include "ssd/ssd.hpp"
#include "workload/workload.hpp"

namespace pofi::platform {

struct PlatformConfig {
  psu::DischargeKind discharge = psu::DischargeKind::kPowerLaw;
  psu::PowerSupply::Params psu{};
  psu::ArduinoBridge::Params arduino{};
  blk::BlockQueue::Config block_queue{};
  /// Dwell at 0 V before the On command (lets every capacitor drain).
  sim::Duration post_fault_dwell = sim::Duration::ms(300);
  /// Closed-loop IO generator: outstanding requests per chain set.
  std::uint32_t closed_loop_depth = 16;
  /// Host think time between a completion and the next submission.
  sim::Duration think_time = sim::Duration::us(50);
  /// Record blktrace events (tests); benches keep it off to bound memory.
  bool trace_enabled = false;
  /// Collect observability metrics: the platform owns an obs::MetricRegistry,
  /// attaches it to the simulator, and returns a Snapshot in the result.
  /// Never perturbs the simulation — campaign rows are identical either way.
  bool metrics = false;
  /// Watchdog step budget: abort the campaign (sim::AbortError, kStepLimit)
  /// once the simulator has fired this many events. 0 disables. Counted in
  /// simulation events, so a pathological config trips at the same point on
  /// every machine and at any thread count — the campaign runner then
  /// retries or quarantines the entry instead of hanging the pool.
  std::uint64_t max_sim_events = 0;
  /// Cooperative cancellation token threaded into the simulator (see
  /// sim::Simulator::set_cancel_token). Runtime wiring, not a spec key: the
  /// suite driver shares one flag across all entries and its signal handler.
  const std::atomic<bool>* cancel = nullptr;
};

class TestPlatform {
 public:
  TestPlatform(ssd::SsdConfig ssd_config, PlatformConfig platform_config, std::uint64_t seed);
  ~TestPlatform();

  TestPlatform(const TestPlatform&) = delete;
  TestPlatform& operator=(const TestPlatform&) = delete;

  /// Execute a campaign. One TestPlatform instance runs one campaign (the
  /// device state carries history; build a fresh platform — or reset() this
  /// one — per experiment).
  [[nodiscard]] ExperimentResult run(const ExperimentSpec& spec);

  /// True when this platform can serve an entry with these configs through
  /// reset() instead of a rebuild: the SSD config and every
  /// construction-relevant platform knob (discharge model, PSU/Arduino
  /// params, block-queue shape, metrics attachment) must match. Per-run
  /// wiring — dwell, think time, trace flag, step limit, cancel token — may
  /// differ; reset() re-applies it from the new config.
  [[nodiscard]] bool compatible_with(const ssd::SsdConfig& drive,
                                     const PlatformConfig& platform_config) const;

  /// Session reset: rewind the entire stack to its just-constructed state,
  /// reseeded with `seed`, while every component retains its slabs. The
  /// event queue is drained first, so no stale callback can fire into the
  /// reset stack; every component RNG stream is re-forked from the reseeded
  /// master under its construction-time label, making the next run()
  /// bit-identical to one on a freshly built platform. Precondition:
  /// compatible_with(...) holds for the configs the next run will use.
  void reset(const PlatformConfig& platform_config, std::uint64_t seed);

  /// Snapshot precondition: whole stack quiescent — device ready and idle,
  /// no live block requests, rail steady, no verification pass running.
  /// (The caller additionally accounts for armed re-armable timers against
  /// the simulator's pending count; see torture::CrashHarness.)
  [[nodiscard]] bool quiescent() const {
    return ssd_->quiescent() && queue_->quiescent() && psu_->quiescent() &&
           analyzer_->quiescent();
  }

  /// Copyable whole-stack state at a quiescent boundary. The lazily-built
  /// workload generator is the campaign driver's, not the torture path's —
  /// the crash harness owns its own generator and images it itself.
  struct StateImage {
    sim::SimulatorImage sim;
    psu::PowerSupply::StateImage psu;
    psu::AtxController::StateImage atx;
    psu::ArduinoBridge::StateImage bridge;
    ssd::Ssd::StateImage ssd;
    blk::BlockQueue::StateImage blk;
    ShadowStore::StateImage shadow;
    Analyzer::StateImage analyzer;
    FaultScheduler::StateImage scheduler;
    std::array<std::uint64_t, 4> platform_rng{};
    bool has_metrics = false;
    obs::MetricRegistry::ValueImage metrics;
    bool io_active = false;
    bool ran = false;
    bool open_loop_mode = true;
    double pace_iops = 5.0;
    std::uint64_t next_packet_id = 1;
    std::uint64_t requests_submitted = 0;
    std::uint64_t cycle_requests = 0;
    std::uint64_t cycle_budget = 0;
    std::uint64_t write_acks = 0;
    std::uint64_t reads_completed = 0;
    std::uint32_t fault_index = 0;
  };

  void snapshot(StateImage& out) const;
  /// Restore onto a (possibly dirty, post-crash) compatible platform. The
  /// simulator queue is cleared first so no stale event survives; re-armable
  /// timers are enqueued on `rearm` and fire once the caller executes it.
  void restore(const StateImage& image, sim::TimerRearmer& rearm);

  // --- Component access (examples, tests) -----------------------------------
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }
  [[nodiscard]] ssd::Ssd& device() { return *ssd_; }
  [[nodiscard]] psu::PowerSupply& power_supply() { return *psu_; }
  [[nodiscard]] blk::BlockQueue& block_queue() { return *queue_; }
  [[nodiscard]] Analyzer& analyzer() { return *analyzer_; }
  [[nodiscard]] ShadowStore& shadow() { return shadow_; }
  [[nodiscard]] psu::ArduinoBridge& arduino() { return *bridge_; }
  [[nodiscard]] FaultScheduler& scheduler() { return *scheduler_; }

 private:
  // IO generator: one self-perpetuating closed-loop chain.
  void io_chain_step();
  void open_loop_step(double mean_gap_sec);
  void submit_one(workload::RequestSpec spec);
  void handle_outcome(workload::DataPacket packet, blk::RequestOutcome out);

  void start_io();
  void stop_io();

  /// Step the simulator until `pred` is false or the queue drains.
  void run_while(const std::function<bool()>& pred, std::uint64_t max_events = 0);

  void power_cycle_and_verify(ExperimentResult& result, sim::TimePoint fault_command_time);
  void run_random_fault_campaign(const ExperimentSpec& spec, ExperimentResult& result);
  void run_fixed_delay_campaign(const ExperimentSpec& spec, ExperimentResult& result);

  sim::Simulator sim_;
  /// Declared directly after sim_ so it outlives every component that caches
  /// metric ids (members below destruct first, in reverse order).
  std::unique_ptr<obs::MetricRegistry> metrics_;
  ssd::SsdConfig ssd_config_;
  PlatformConfig config_;

  std::unique_ptr<psu::PowerSupply> psu_;
  std::unique_ptr<psu::AtxController> atx_;
  std::unique_ptr<psu::ArduinoBridge> bridge_;
  std::unique_ptr<ssd::Ssd> ssd_;
  std::unique_ptr<blk::BlockQueue> queue_;
  ShadowStore shadow_;
  std::unique_ptr<Analyzer> analyzer_;
  std::unique_ptr<FaultScheduler> scheduler_;
  std::unique_ptr<workload::WorkloadGenerator> generator_;
  sim::Rng rng_;

  bool io_active_ = false;
  bool ran_ = false;
  bool open_loop_mode_ = true;
  double pace_iops_ = 5.0;
  std::uint64_t next_packet_id_ = 1;
  std::uint64_t requests_submitted_ = 0;
  std::uint64_t cycle_requests_ = 0;
  std::uint64_t cycle_budget_ = 0;
  std::uint64_t write_acks_ = 0;
  std::uint64_t reads_completed_ = 0;
  std::uint32_t fault_index_ = 0;
};

}  // namespace pofi::platform
