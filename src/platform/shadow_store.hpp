// Host-side ground truth of what the SSD should contain.
//
// Content tags stand in for checksummed payloads: the store allocates a
// fresh, never-reused 64-bit tag per written page, so tag equality *is*
// checksum equality (collision-free by construction) and the analyzer can
// distinguish new data / previous data / garbage exactly the way the paper's
// checksum triple does.
//
// Pages touched by a write whose ACK never arrived are *indeterminate*: the
// device legitimately may hold either the old or the new data. Verification
// accepts both and collapses the state to whatever was observed.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "ftl/types.hpp"
#include "nand/page.hpp"

namespace pofi::platform {

class ShadowStore {
 public:
  /// Allocate `n` fresh content tags (one per page of a write payload).
  [[nodiscard]] std::vector<std::uint64_t> allocate_tags(std::uint32_t n);

  /// Expected on-disk tag (kErasedContent when never written).
  [[nodiscard]] std::uint64_t expected(ftl::Lpn lpn) const;

  /// True if `tag` is a legitimate value for this page (expected, or the
  /// unacked-alternate when indeterminate).
  [[nodiscard]] bool acceptable(ftl::Lpn lpn, std::uint64_t tag) const;

  /// A write to [lpn, lpn+tags.size()) was ACKed: tags become expected.
  void commit_write(ftl::Lpn lpn, std::span<const std::uint64_t> tags);

  /// A write failed/never completed: each page may hold old or new data.
  void mark_indeterminate(ftl::Lpn lpn, std::span<const std::uint64_t> tags);

  /// Verification read observed `tag` on disk: collapse to that reality.
  void observe(ftl::Lpn lpn, std::uint64_t tag);

  [[nodiscard]] std::size_t tracked_pages() const { return truth_.size(); }
  [[nodiscard]] std::uint64_t tags_allocated() const { return next_tag_ - 1; }

  /// Visit every tracked page as fn(lpn, expected_tag, indeterminate).
  /// Iteration order is unspecified (hash map) — callers needing determinism
  /// must sort what they collect.
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (const auto& [lpn, truth] : truth_) fn(lpn, truth.expected, truth.indeterminate);
  }

  /// Session reset: forget all truth and restart tag allocation from 1,
  /// keeping the map's buckets.
  void reset() {
    truth_.clear();
    next_tag_ = 1;
  }

  struct StateImage;
  void snapshot(StateImage& out) const;
  void restore(const StateImage& image);

 private:
  struct PageTruth {
    std::uint64_t expected = nand::kErasedContent;
    std::uint64_t alternate = nand::kErasedContent;  ///< unacked write's tag
    bool indeterminate = false;
  };

  std::unordered_map<ftl::Lpn, PageTruth> truth_;
  std::uint64_t next_tag_ = 1;
};

/// Copyable ground-truth state at a quiescent boundary.
struct ShadowStore::StateImage {
  std::unordered_map<ftl::Lpn, PageTruth> truth;
  std::uint64_t next_tag = 1;
};

inline void ShadowStore::snapshot(StateImage& out) const {
  out.truth = truth_;
  out.next_tag = next_tag_;
}

inline void ShadowStore::restore(const StateImage& image) {
  truth_ = image.truth;
  next_tag_ = image.next_tag;
}

}  // namespace pofi::platform
