// Human-readable experiment reporting.
//
// Formats an ExperimentResult the way the Analyzer's "Report Failures" box
// in Fig. 1 would: headline counts, per-class breakdown, the ACK-to-fault
// interval distribution (§IV-A's key evidence) and the device-side
// mechanism counters that explain where each loss came from.
#pragma once

#include <string>

#include "platform/experiment.hpp"

namespace pofi::platform {

struct ReportOptions {
  bool include_interval_histogram = true;
  double histogram_max_ms = 1000.0;
  std::size_t histogram_bins = 10;
  bool include_mechanisms = true;
  /// Provenance stamp: the campaign spec's canonical content hash
  /// ("fnv1a:...") and the pofi build version. Omitted from the report when
  /// left empty.
  std::string spec_hash;
  std::string version;
};

[[nodiscard]] std::string format_report(const ExperimentResult& result,
                                        const ReportOptions& options = {});

}  // namespace pofi::platform
