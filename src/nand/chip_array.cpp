#include "nand/chip_array.hpp"

#include <cassert>
#include <string>

namespace pofi::nand {

ChipArray::ChipArray(sim::Simulator& simulator, Config config) : config_(config) {
  assert(config_.channels >= 1);
  effective_geometry_ = config_.chip.geometry;
  effective_geometry_.planes = config_.chip.geometry.planes * config_.channels;
  chips_.reserve(config_.channels);
  for (std::uint32_t c = 0; c < config_.channels; ++c) {
    // Distinct RNG label per die: error draws must be independent across
    // channels even though every die shares one simulator.
    chips_.push_back(std::make_unique<NandChip>(simulator, config_.chip,
                                                "nand-die-" + std::to_string(c)));
  }
}

Ppn ChipArray::local_ppn(Ppn ppn) const {
  const BlockId gb = effective_geometry_.block_of(ppn);
  const std::uint32_t pib = effective_geometry_.page_in_block(ppn);
  return local_block(gb) * effective_geometry_.pages_per_block + pib;
}

void ChipArray::read(Ppn ppn, NandChip::ReadCallback cb) {
  chips_[channel_of_ppn(ppn)]->read(local_ppn(ppn), std::move(cb));
}

void ChipArray::program(Ppn ppn, std::uint64_t content, Oob oob, NandChip::OpCallback cb) {
  chips_[channel_of_ppn(ppn)]->program(local_ppn(ppn), content, oob, std::move(cb));
}

void ChipArray::erase(BlockId block, NandChip::OpCallback cb) {
  chips_[channel_of_block(block)]->erase(local_block(block), std::move(cb));
}

void ChipArray::read_oob(Ppn ppn, NandChip::OobCallback cb) {
  chips_[channel_of_ppn(ppn)]->read_oob(local_ppn(ppn), std::move(cb));
}

void ChipArray::on_power_lost() {
  for (auto& c : chips_) c->on_power_lost();
}

void ChipArray::on_power_good() {
  for (auto& c : chips_) c->on_power_good();
}

bool ChipArray::powered() const { return chips_.front()->powered(); }

const Page* ChipArray::peek(Ppn ppn) const {
  return chips_[channel_of_ppn(ppn)]->peek(local_ppn(ppn));
}

ReadResult ChipArray::read_now(Ppn ppn) {
  return chips_[channel_of_ppn(ppn)]->read_now(local_ppn(ppn));
}

std::uint32_t ChipArray::erase_count(BlockId b) const {
  return chips_[channel_of_block(b)]->erase_count(local_block(b));
}

bool ChipArray::is_bad(BlockId b) const {
  return chips_[channel_of_block(b)]->is_bad(local_block(b));
}

std::size_t ChipArray::touched_blocks() const {
  std::size_t n = 0;
  for (const auto& c : chips_) n += c->touched_blocks();
  return n;
}

ChipStats ChipArray::stats() const {
  ChipStats total;
  for (const auto& c : chips_) {
    const ChipStats& s = c->stats();
    total.reads += s.reads;
    total.programs += s.programs;
    total.erases += s.erases;
    total.uncorrectable_reads += s.uncorrectable_reads;
    total.interrupted_programs += s.interrupted_programs;
    total.interrupted_erases += s.interrupted_erases;
    total.paired_page_upsets += s.paired_page_upsets;
    total.dropped_queued_ops += s.dropped_queued_ops;
    total.order_violations += s.order_violations;
  }
  return total;
}

}  // namespace pofi::nand
