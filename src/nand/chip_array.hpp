// ChipArray: the SSD's full NAND complement — `channels` independent dies
// behind independent channel buses.
//
// Global physical addressing interleaves blocks across channels (global
// block b lives on chip b % channels), so consecutively-allocated blocks
// spread over every die and channel-level parallelism falls out of the
// allocator's striping. The array mirrors the single-chip command interface
// with global PPNs/BlockIds and fans power events out to every die.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nand/chip.hpp"

namespace pofi::nand {

class ChipArray {
 public:
  struct Config {
    std::uint32_t channels = 1;
    /// Per-die configuration (geometry describes ONE die).
    NandChip::Config chip;

    bool operator==(const Config&) const = default;
  };

  ChipArray(sim::Simulator& simulator, Config config);

  ChipArray(const ChipArray&) = delete;
  ChipArray& operator=(const ChipArray&) = delete;

  /// Address space the FTL sees: one flat geometry whose plane count is
  /// channels x per-die planes (each "lane" is a real (die, plane) pair).
  [[nodiscard]] const Geometry& geometry() const { return effective_geometry_; }
  [[nodiscard]] std::uint32_t channels() const { return config_.channels; }
  [[nodiscard]] const NandChip::Config& chip_config() const { return config_.chip; }

  // --- Command interface (global addresses), mirrors NandChip -------------
  void read(Ppn ppn, NandChip::ReadCallback cb);
  void program(Ppn ppn, std::uint64_t content, NandChip::OpCallback cb) {
    program(ppn, content, Oob{}, std::move(cb));
  }
  void program(Ppn ppn, std::uint64_t content, Oob oob, NandChip::OpCallback cb);
  void erase(BlockId block, NandChip::OpCallback cb);
  void read_oob(Ppn ppn, NandChip::OobCallback cb);

  // --- Power ----------------------------------------------------------------
  void on_power_lost();
  void on_power_good();
  [[nodiscard]] bool powered() const;

  /// Session reset: reset every die (see NandChip::reset preconditions).
  void reset() {
    for (auto& chip : chips_) chip->reset();
  }

  [[nodiscard]] bool quiescent() const {
    for (const auto& chip : chips_) {
      if (!chip->quiescent()) return false;
    }
    return true;
  }

  /// Per-die images, in channel order. The vector is sized on first capture
  /// and reused afterwards.
  struct StateImage {
    std::vector<NandChip::StateImage> dies;
  };

  void snapshot(StateImage& out) const {
    out.dies.resize(chips_.size());
    for (std::size_t i = 0; i < chips_.size(); ++i) chips_[i]->snapshot(out.dies[i]);
  }

  void restore(const StateImage& image) {
    for (std::size_t i = 0; i < chips_.size(); ++i) chips_[i]->restore(image.dies[i]);
  }

  // --- Inspection (global addressing) ----------------------------------------
  [[nodiscard]] const Page* peek(Ppn ppn) const;
  [[nodiscard]] ReadResult read_now(Ppn ppn);
  [[nodiscard]] std::uint32_t erase_count(BlockId b) const;
  [[nodiscard]] bool is_bad(BlockId b) const;
  [[nodiscard]] std::size_t touched_blocks() const;
  /// Aggregate statistics across every die.
  [[nodiscard]] ChipStats stats() const;
  [[nodiscard]] NandChip& die(std::uint32_t channel) { return *chips_[channel]; }
  [[nodiscard]] const EccScheme& ecc() const { return chips_.front()->ecc(); }

  // --- Address translation (exposed for tests) -------------------------------
  [[nodiscard]] std::uint32_t channel_of_block(BlockId b) const {
    return static_cast<std::uint32_t>(b % config_.channels);
  }
  [[nodiscard]] BlockId local_block(BlockId b) const { return b / config_.channels; }
  [[nodiscard]] Ppn local_ppn(Ppn ppn) const;
  [[nodiscard]] std::uint32_t channel_of_ppn(Ppn ppn) const {
    return channel_of_block(effective_geometry_.block_of(ppn));
  }

 private:
  Config config_;
  Geometry effective_geometry_;
  std::vector<std::unique_ptr<NandChip>> chips_;
};

}  // namespace pofi::nand
