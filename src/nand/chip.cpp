#include "nand/chip.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "sim/log.hpp"

namespace pofi::nand {

NandChip::NandChip(sim::Simulator& simulator, Config config, std::string_view rng_label)
    : sim_(simulator),
      config_(config),
      timing_(timing_for(config.tech)),
      errors_(error_model_for(config.tech)),
      ecc_(make_ecc(config.ecc)),
      rng_label_(rng_label),
      rng_(simulator.fork_rng(rng_label)),
      planes_(config.geometry.planes),
      arena_(config.geometry, config.initial_pe_cycles) {
  if (auto* m = sim_.metrics()) {
    obs_ispp_started_ = m->counter("nand.ispp.started");
    obs_ispp_interrupted_ = m->counter("nand.ispp.interrupted");
    obs_erase_interrupted_ = m->counter("nand.erase.interrupted");
    obs_bit_errors_ = m->counter("nand.read.bit_errors");
    obs_ecc_corrected_ = m->counter("nand.ecc.corrected");
    obs_ecc_uncorrectable_ = m->counter("nand.ecc.uncorrectable");
    obs_paired_upsets_ = m->counter("nand.paired_page.upsets");
    obs_blocks_retired_ = m->counter("nand.block.retired");
  }
}

void NandChip::reset() {
  powered_ = false;
  for (Plane& p : planes_) {
    p.busy.reset();
    p.queue.clear();
  }
  arena_.reset();
  peek_scratch_ = Page{};
  stats_ = ChipStats{};
  rng_ = sim_.fork_rng(rng_label_);
}

double NandChip::wear_severity(BlockArena::Slot slot) const {
  // Worn cells have wider threshold-voltage distributions: the same
  // interruption or paired-page upset lands more raw errors near end of
  // life. Superlinear in wear (distribution tails fatten late in life),
  // quadrupling the damage at the endurance limit.
  const double ratio = static_cast<double>(arena_.erase_count(slot)) /
                       std::max(1u, config_.endurance_pe_cycles);
  return 1.0 + 3.0 * ratio * ratio;
}

const Page* NandChip::peek(Ppn ppn) const {
  const BlockArena::Slot slot = arena_.find(config_.geometry.block_of(ppn));
  if (slot == BlockArena::kNoSlot) return nullptr;
  peek_scratch_ = arena_.snapshot(slot, config_.geometry.page_in_block(ppn));
  return &peek_scratch_;
}

std::uint32_t NandChip::erase_count(BlockId b) const {
  const BlockArena::Slot slot = arena_.find(b);
  return slot == BlockArena::kNoSlot ? 0 : arena_.erase_count(slot);
}

bool NandChip::is_bad(BlockId b) const {
  const BlockArena::Slot slot = arena_.find(b);
  return slot != BlockArena::kNoSlot && arena_.bad(slot);
}

// ------------------------------------------------------------- submission

void NandChip::read(Ppn ppn, ReadCallback cb) {
  if (!powered_) {
    cb(ReadResult{ReadResult::Status::kPowerLost, kErasedContent, 0, 0});
    return;
  }
  InFlight op;
  op.kind = InFlight::Kind::kRead;
  op.ppn = ppn;
  op.block = config_.geometry.block_of(ppn);
  op.duration = timing_.read_page;
  op.read_cb = std::move(cb);
  enqueue(config_.geometry.plane_of(ppn), std::move(op));
}

void NandChip::program(Ppn ppn, std::uint64_t content, Oob oob, OpCallback cb) {
  if (!powered_) {
    cb(OpResult{OpResult::Status::kPowerLost});
    return;
  }
  InFlight op;
  op.kind = InFlight::Kind::kProgram;
  op.ppn = ppn;
  op.block = config_.geometry.block_of(ppn);
  op.content = content;
  op.oob = oob;
  const PageRole role = page_role(config_.tech, config_.geometry.page_in_block(ppn));
  op.duration = timing_.program_time(role);
  op.op_cb = std::move(cb);
  if (auto* m = sim_.metrics()) m->add(obs_ispp_started_);
  enqueue(config_.geometry.plane_of(ppn), std::move(op));
}

void NandChip::read_oob(Ppn ppn, OobCallback cb) {
  if (!powered_) {
    cb(OobResult{});
    return;
  }
  InFlight op;
  op.kind = InFlight::Kind::kReadOob;
  op.ppn = ppn;
  op.block = config_.geometry.block_of(ppn);
  op.duration = timing_.read_page;
  op.oob_cb = std::move(cb);
  enqueue(config_.geometry.plane_of(ppn), std::move(op));
}

void NandChip::erase(BlockId block, OpCallback cb) {
  if (!powered_) {
    cb(OpResult{OpResult::Status::kPowerLost});
    return;
  }
  InFlight op;
  op.kind = InFlight::Kind::kErase;
  op.block = block;
  op.ppn = config_.geometry.first_page(block);
  op.duration = timing_.erase_block;
  op.op_cb = std::move(cb);
  enqueue(static_cast<std::uint32_t>(block % config_.geometry.planes), std::move(op));
}

void NandChip::enqueue(std::uint32_t plane_idx, InFlight op) {
  Plane& plane = planes_[plane_idx];
  plane.queue.push_back(std::move(op));
  if (!plane.busy.has_value()) start_next(plane_idx);
}

void NandChip::start_next(std::uint32_t plane_idx) {
  Plane& plane = planes_[plane_idx];
  if (plane.busy.has_value() || plane.queue.empty() || !powered_) return;
  plane.busy = plane.queue.pop_front();
  InFlight& op = *plane.busy;
  op.start = sim_.now();
  op.completion = sim_.after(op.duration, [this, plane_idx] { complete(plane_idx); });
}

void NandChip::complete(std::uint32_t plane_idx) {
  Plane& plane = planes_[plane_idx];
  assert(plane.busy.has_value());
  InFlight op = std::move(*plane.busy);
  plane.busy.reset();
  switch (op.kind) {
    case InFlight::Kind::kRead: finish_read(op); break;
    case InFlight::Kind::kReadOob: finish_read_oob(op); break;
    case InFlight::Kind::kProgram: finish_program(op); break;
    case InFlight::Kind::kErase: finish_erase(op); break;
  }
  start_next(plane_idx);
}

// -------------------------------------------------------------- completion

std::uint64_t NandChip::raw_errors_for(BlockArena::Slot slot, std::uint32_t pib) {
  const double bits = static_cast<double>(config_.geometry.page_bits());
  const bool partially_erased = arena_.partially_erased(slot);
  double ber = 0.0;
  switch (arena_.status(slot, pib)) {
    case PageStatus::kErased:
      // A clean erased page has no errors to read; but inside a partially-
      // erased block even "erased" cells sit at unstable thresholds.
      if (!partially_erased) return arena_.upset_errors(slot, pib);
      break;  // fall through to the partially_erased bump below
    case PageStatus::kValid:
      ber = errors_.base_ber + errors_.ber_per_pe_cycle * arena_.erase_count(slot) +
            errors_.read_disturb_ber * arena_.reads_since_erase(slot) +
            errors_.program_disturb_ber * arena_.programs_since_erase(slot);
      break;
    case PageStatus::kPartial: {
      const double incomplete = 1.0 - static_cast<double>(arena_.progress(slot, pib));
      ber = 0.5 * std::pow(incomplete, errors_.interrupt_shape) * wear_severity(slot) +
            errors_.base_ber;
      break;
    }
    case PageStatus::kCorrupt:
      // Undefined cell states: a quarter of the bits read wrong.
      return static_cast<std::uint64_t>(bits / 4.0) + arena_.upset_errors(slot, pib);
  }
  if (partially_erased) ber += 0.05;  // unstable threshold voltages
  const double lambda = ber * bits;
  return rng_.poisson(lambda) + arena_.upset_errors(slot, pib);
}

ReadResult NandChip::read_through_ecc(Ppn ppn) {
  const BlockArena::Slot slot = arena_.touch(config_.geometry.block_of(ppn));
  const std::uint32_t pib = config_.geometry.page_in_block(ppn);
  arena_.bump_reads_since_erase(slot);

  ReadResult result;
  result.raw_errors = raw_errors_for(slot, pib);
  const DecodeOutcome out = ecc_->decode(config_.geometry.page_bits(), result.raw_errors, rng_);
  result.soft_retries = out.soft_retries;
  const std::uint64_t content = arena_.content(slot, pib);
  if (out.correctable) {
    result.status = ReadResult::Status::kOk;
    result.content = content;
  } else {
    result.status = ReadResult::Status::kUncorrectable;
    // Deterministic garbage distinct from any allocated tag.
    result.content = content ^ (0x9e3779b97f4a7c15ULL * (result.raw_errors | 1ULL));
    ++stats_.uncorrectable_reads;
  }
  if (auto* m = sim_.metrics()) {
    m->add(obs_bit_errors_, result.raw_errors);
    if (out.correctable && result.raw_errors > 0) {
      m->add(obs_ecc_corrected_, result.raw_errors);
    } else if (!out.correctable) {
      m->add(obs_ecc_uncorrectable_);
    }
  }
  return result;
}

void NandChip::finish_read(InFlight& op) {
  ++stats_.reads;
  ReadResult result = read_through_ecc(op.ppn);
  if (op.read_cb) op.read_cb(result);
}

void NandChip::finish_read_oob(InFlight& op) {
  ++stats_.reads;
  // The spare area is covered by the same codewords as the data: its
  // readability shares the page's ECC fate.
  const ReadResult page = read_through_ecc(op.ppn);
  OobResult result;
  if (page.ok()) {
    const BlockArena::Slot slot = arena_.find(op.block);
    const std::uint32_t pib = config_.geometry.page_in_block(op.ppn);
    if (slot != BlockArena::kNoSlot &&
        arena_.status(slot, pib) != PageStatus::kErased) {
      result.ok = true;
      result.oob = arena_.oob(slot, pib);
    }
  }
  if (op.oob_cb) op.oob_cb(result);
}

ReadResult NandChip::read_now(Ppn ppn) {
  ++stats_.reads;
  return read_through_ecc(ppn);
}

void NandChip::finish_program(InFlight& op) {
  const BlockArena::Slot slot = arena_.touch(op.block);
  const std::uint32_t pib = config_.geometry.page_in_block(op.ppn);
  if (arena_.bad(slot)) {
    if (op.op_cb) op.op_cb(OpResult{OpResult::Status::kBadBlock});
    return;
  }
  if (config_.enforce_program_order && pib != arena_.next_program_page(slot)) {
    ++stats_.order_violations;
    if (op.op_cb) op.op_cb(OpResult{OpResult::Status::kOrderViolation});
    return;
  }
  arena_.set_programmed(slot, pib, op.content, op.oob);
  if (arena_.has_upsets(slot)) arena_.set_upset_errors(slot, pib, 0);
  arena_.bump_programs_since_erase(slot);
  arena_.set_next_program_page(slot, pib + 1);
  ++stats_.programs;
  if (op.op_cb) op.op_cb(OpResult{OpResult::Status::kOk});
}

void NandChip::finish_erase(InFlight& op) {
  const BlockArena::Slot slot = arena_.touch(op.block);
  if (arena_.erase_count(slot) >= config_.endurance_pe_cycles) {
    arena_.set_bad(slot);
    if (auto* m = sim_.metrics()) m->add(obs_blocks_retired_);
    if (op.op_cb) op.op_cb(OpResult{OpResult::Status::kBadBlock});
    return;
  }
  arena_.erase_block(slot);
  arena_.set_erase_count(slot, arena_.erase_count(slot) + 1);
  ++stats_.erases;
  if (op.op_cb) op.op_cb(OpResult{OpResult::Status::kOk});
}

// -------------------------------------------------------------- power loss

void NandChip::on_power_lost() {
  if (!powered_) return;
  powered_ = false;
  for (auto& plane : planes_) {
    stats_.dropped_queued_ops += plane.queue.size();
    plane.queue.clear();
    if (!plane.busy.has_value()) continue;
    InFlight& op = *plane.busy;
    sim_.cancel(op.completion);
    switch (op.kind) {
      case InFlight::Kind::kRead:
      case InFlight::Kind::kReadOob:
        break;  // reads leave no trace on the array
      case InFlight::Kind::kProgram:
        interrupt_program(op);
        break;
      case InFlight::Kind::kErase:
        interrupt_erase(op);
        break;
    }
    // No callbacks: the controller that issued these just lost power too.
    plane.busy.reset();
  }
}

void NandChip::on_power_good() { powered_ = true; }

void NandChip::interrupt_program(InFlight& op) {
  ++stats_.interrupted_programs;
  if (auto* m = sim_.metrics()) m->add(obs_ispp_interrupted_);
  const BlockArena::Slot slot = arena_.touch(op.block);
  const std::uint32_t pib = config_.geometry.page_in_block(op.ppn);
  const PageRole role = page_role(config_.tech, pib);
  const std::uint32_t steps = timing_.ispp_steps(role);

  const double frac = std::clamp(
      (sim_.now() - op.start).to_sec() / std::max(1e-12, op.duration.to_sec()), 0.0, 1.0);
  // Interruption lands on an ISPP step boundary: completed pulses stick.
  const double progress =
      std::floor(frac * static_cast<double>(steps)) / static_cast<double>(steps);

  if (progress >= 1.0) {
    // All pulses and the final verify finished; effectively a completed
    // program whose ACK never made it out of the die.
    arena_.set_programmed(slot, pib, op.content, op.oob);
    arena_.bump_programs_since_erase(slot);
    arena_.set_next_program_page(slot, pib + 1);
    return;
  }
  arena_.set_partial(slot, pib, static_cast<float>(progress), op.content, op.oob);
  arena_.bump_programs_since_erase(slot);
  arena_.set_next_program_page(slot, pib + 1);  // the cursor burned this page either way

  // Interrupting a later pass on a shared wordline shifts charge under the
  // partners that were already programmed and ACKed (the paper's corruption
  // of previously-written data, present even with the DRAM cache off).
  if (role != PageRole::kLower) {
    apply_paired_page_damage(op.block, pib, 1.0 - progress);
  }
}

void NandChip::apply_paired_page_damage(BlockId block_id, std::uint32_t page_in_block,
                                        double severity) {
  if (errors_.paired_page_upset_ber <= 0.0) return;
  const BlockArena::Slot slot = arena_.touch(block_id);
  const std::uint32_t base = wordline_base(config_.tech, page_in_block);
  const double bits = static_cast<double>(config_.geometry.page_bits());
  const std::uint32_t pages_per_block = config_.geometry.pages_per_block;
  for (std::uint32_t p = base; p < page_in_block && p < pages_per_block; ++p) {
    if (arena_.status(slot, p) != PageStatus::kValid) continue;
    const double lambda =
        errors_.paired_page_upset_ber * severity * wear_severity(slot) * bits;
    const std::uint64_t upset = rng_.poisson(lambda);
    if (upset == 0) continue;
    const std::uint32_t current = arena_.upset_errors(slot, p);
    arena_.set_upset_errors(
        slot, p,
        current + static_cast<std::uint32_t>(std::min<std::uint64_t>(
                      upset, std::numeric_limits<std::uint32_t>::max() - current)));
    ++stats_.paired_page_upsets;
    if (auto* m = sim_.metrics()) m->add(obs_paired_upsets_);
  }
}

void NandChip::interrupt_erase(InFlight& op) {
  ++stats_.interrupted_erases;
  if (auto* m = sim_.metrics()) m->add(obs_erase_interrupted_);
  const BlockArena::Slot slot = arena_.touch(op.block);
  const double frac = std::clamp(
      (sim_.now() - op.start).to_sec() / std::max(1e-12, op.duration.to_sec()), 0.0, 1.0);
  if (frac >= 1.0) {
    // Completed under dying power; treat as a normal erase.
    arena_.erase_block(slot);
    arena_.set_erase_count(slot, arena_.erase_count(slot) + 1);
    return;
  }
  // Cells are somewhere between their old states and erased: every page that
  // held data is now undefined, and the whole block reads unstably until a
  // clean erase completes.
  for (std::uint32_t p = 0; p < config_.geometry.pages_per_block; ++p) {
    const PageStatus st = arena_.status(slot, p);
    if (st == PageStatus::kValid || st == PageStatus::kPartial) {
      arena_.corrupt_page(slot, p);
    }
  }
  arena_.set_partially_erased(slot);
}

}  // namespace pofi::nand
