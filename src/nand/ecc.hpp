// Error-correcting codes used by SSD controllers.
//
// Two layers:
//  * A *capability model* (`EccScheme`) used on the hot simulation path: a
//    page carries a raw bit-error count; the scheme decides whether the
//    controller's decoder would recover it, and at what read-latency cost.
//    BCH is modelled per-codeword with exact Poisson partitioning of errors
//    over codewords; LDPC adds soft-read retries (Table I: SSD B uses LDPC).
//  * A *real codec* (`HammingSecDed`, (72,64)) exercised in full-payload mode
//    and by property tests, so the platform's checksum machinery is verified
//    against genuine bit flips, not just the capability abstraction.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/rng.hpp"
#include "sim/time.hpp"

namespace pofi::nand {

struct DecodeOutcome {
  bool correctable = true;
  std::uint64_t residual_errors = 0;    ///< errors left if uncorrectable
  sim::Duration extra_latency{};        ///< retries / soft reads
  std::uint32_t soft_retries = 0;
};

class EccScheme {
 public:
  virtual ~EccScheme() = default;

  /// Decide the fate of a page read that carries `bit_errors` raw errors
  /// spread uniformly over `page_bits` data bits.
  [[nodiscard]] virtual DecodeOutcome decode(std::uint64_t page_bits, std::uint64_t bit_errors,
                                             sim::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Rough per-codeword correction strength, for reporting.
  [[nodiscard]] virtual std::uint32_t strength() const = 0;
};

/// No correction at all (raw NAND): any error is fatal.
class NoEcc final : public EccScheme {
 public:
  [[nodiscard]] DecodeOutcome decode(std::uint64_t, std::uint64_t bit_errors,
                                     sim::Rng&) const override;
  [[nodiscard]] std::string name() const override { return "none"; }
  [[nodiscard]] std::uint32_t strength() const override { return 0; }
};

/// BCH-class hard-decision code: corrects up to `t` errors per codeword of
/// `codeword_bits`. A page of B bits holds B/codeword_bits codewords; errors
/// land in codewords as independent Poissons conditioned on the total.
class BchEcc final : public EccScheme {
 public:
  explicit BchEcc(std::uint32_t t_per_codeword = 40, std::uint32_t codeword_bytes = 1024)
      : t_(t_per_codeword), codeword_bits_(codeword_bytes * 8ULL) {}

  [[nodiscard]] DecodeOutcome decode(std::uint64_t page_bits, std::uint64_t bit_errors,
                                     sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t strength() const override { return t_; }

  /// Probability that every codeword of the page decodes.
  [[nodiscard]] double page_success_probability(std::uint64_t page_bits,
                                                std::uint64_t bit_errors) const;

 private:
  std::uint32_t t_;
  std::uint64_t codeword_bits_;
};

/// LDPC with soft-read retries: hard-decision strength `t`, and each of up to
/// `max_retries` soft re-reads raises effective strength by `soft_gain` but
/// costs one extra page-read latency. Matches how modern TLC controllers
/// trade tail latency for correction.
class LdpcEcc final : public EccScheme {
 public:
  struct Params {
    std::uint32_t t_hard = 60;
    std::uint32_t codeword_bytes = 2048;
    std::uint32_t max_retries = 3;
    double soft_gain = 0.4;  ///< strength multiplier added per retry
    sim::Duration retry_latency = sim::Duration::us(80);
  };

  explicit LdpcEcc(Params p) : params_(p) {}
  LdpcEcc();  // out-of-line: GCC 12 in-class delegation NSDMI bug

  [[nodiscard]] DecodeOutcome decode(std::uint64_t page_bits, std::uint64_t bit_errors,
                                     sim::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t strength() const override { return params_.t_hard; }

 private:
  Params params_;
};

enum class EccKind { kNone, kBch, kLdpc };
[[nodiscard]] std::unique_ptr<EccScheme> make_ecc(EccKind kind);
[[nodiscard]] const char* to_string(EccKind kind);

/// Regularised lower incomplete gamma based Poisson CDF P(X <= k | lambda),
/// exposed for tests and for BchEcc.
[[nodiscard]] double poisson_cdf(std::uint32_t k, double lambda);

// ---------------------------------------------------------------------------
// Real codec: Hamming (72,64) SEC-DED over 64-bit words.
// ---------------------------------------------------------------------------
class HammingSecDed {
 public:
  struct Codeword {
    std::uint64_t data = 0;
    std::uint8_t parity = 0;
  };

  enum class Result : std::uint8_t { kClean, kCorrectedSingle, kDetectedDouble };

  /// Compute the 8 check bits (7 Hamming + 1 overall parity) for `data`.
  [[nodiscard]] static Codeword encode(std::uint64_t data);

  /// Decode in place: fixes a single flipped bit (data or parity), flags a
  /// double flip as uncorrectable.
  static Result decode(Codeword& cw);

 private:
  [[nodiscard]] static std::uint8_t syndrome_of(const Codeword& cw);
};

}  // namespace pofi::nand
