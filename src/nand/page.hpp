// Per-page and per-block simulated state.
//
// Pages do not store payload bytes on the hot path; they store a 64-bit
// *content tag* identifying what was written. Tags are collision-free by
// construction (allocated by the host-side shadow store), so tag equality is
// exactly checksum equality. Full-payload mode (tests) carries real bytes in
// a side table owned by the chip.
#pragma once

#include <cstdint>

#include "nand/geometry.hpp"

namespace pofi::nand {

/// Content tag of an erased/never-written page (all-0xFF flash reads).
inline constexpr std::uint64_t kErasedContent = ~0ULL;

enum class PageStatus : std::uint8_t {
  kErased,   ///< never programmed since last erase
  kValid,    ///< program completed and verified
  kPartial,  ///< program interrupted mid-ISPP by power loss
  kCorrupt,  ///< cell states undefined (e.g. interrupted erase)
};

[[nodiscard]] constexpr const char* to_string(PageStatus s) {
  switch (s) {
    case PageStatus::kErased: return "erased";
    case PageStatus::kValid: return "valid";
    case PageStatus::kPartial: return "partial";
    case PageStatus::kCorrupt: return "corrupt";
  }
  return "?";
}

/// Out-of-band (spare-area) metadata programmed with each page. Real FTLs
/// stamp every page with its logical address and a write sequence number so
/// the mapping can be rebuilt by scanning flash after a crash.
struct Oob {
  std::uint64_t lpn = ~0ULL;  ///< logical page this physical page holds
  std::uint64_t seq = 0;      ///< global write sequence number
  [[nodiscard]] bool valid() const { return lpn != ~0ULL; }
};

/// AoS view of one page's state. Storage lives in the chip's BlockArena as
/// struct-of-arrays lanes; `Page` is the assembled snapshot handed out by
/// inspection paths (NandChip::peek) and tests.
struct Page {
  PageStatus status = PageStatus::kErased;
  /// ISPP completion fraction in [0,1); meaningful for kPartial.
  float progress = 0.0f;
  /// Tag of the data the host intended to store here.
  std::uint64_t content = kErasedContent;
  /// Spare-area metadata (shares the page's fate: unreadable when the page
  /// is uncorrectable).
  Oob oob;
  /// Raw bit errors accumulated from discrete upset events (paired-page
  /// damage on interrupted sibling passes). Disturb from ordinary traffic is
  /// modelled statistically from block counters at read time.
  std::uint32_t upset_errors = 0;
};

}  // namespace pofi::nand
