#include "nand/ecc.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <vector>

namespace pofi::nand {

namespace {

/// Codewords per page for a given codeword size (>= 1).
std::uint64_t codewords_in_page(std::uint64_t page_bits, std::uint64_t codeword_bits) {
  return std::max<std::uint64_t>(1, page_bits / codeword_bits);
}

/// P(Poisson(lambda) <= k), in log space to survive large lambda.
double poisson_cdf_impl(std::uint32_t k, double lambda) {
  if (lambda <= 0.0) return 1.0;
  // Far-tail shortcut: the mass below k is negligible.
  if (lambda > k + 12.0 * std::sqrt(lambda) + 30.0) return 0.0;
  double sum = 0.0;
  const double log_lambda = std::log(lambda);
  for (std::uint32_t i = 0; i <= k; ++i) {
    const double log_term = -lambda + i * log_lambda - std::lgamma(static_cast<double>(i) + 1.0);
    sum += std::exp(log_term);
  }
  return std::min(1.0, sum);
}

/// Success probability that all codewords decode when `errors` raw errors
/// land uniformly in `n_cw` codewords, each correcting up to `t`.
double all_codewords_ok_probability(std::uint32_t t, std::uint64_t n_cw, std::uint64_t errors) {
  if (errors == 0) return 1.0;
  if (n_cw == 1) return errors <= t ? 1.0 : 0.0;
  const double lambda = static_cast<double>(errors) / static_cast<double>(n_cw);
  const double per_cw = poisson_cdf_impl(t, lambda);
  if (per_cw <= 0.0) return 0.0;
  return std::exp(static_cast<double>(n_cw) * std::log(per_cw));
}

/// Exact small-count path: throw each error into a uniformly random codeword
/// and check the max occupancy against t. Deterministic given the rng.
constexpr std::uint64_t kExactThreshold = 192;  // errors below this use exact path

bool exact_assignment_ok(std::uint32_t t, std::uint64_t n_cw, std::uint64_t errors,
                         sim::Rng& rng) {
  // With few errors, collisions are rare; track counts sparsely. Callers
  // bound `errors` by kExactThreshold, so a stack array suffices: this runs
  // on every read that draws any bit error, and must not touch the heap.
  std::array<std::pair<std::uint64_t, std::uint32_t>, kExactThreshold> counts;
  std::size_t used = 0;
  for (std::uint64_t e = 0; e < errors; ++e) {
    const std::uint64_t cw = rng.below(n_cw);
    bool found = false;
    for (std::size_t i = 0; i < used; ++i) {
      if (counts[i].first == cw) {
        if (++counts[i].second > t) return false;
        found = true;
        break;
      }
    }
    if (!found) {
      counts[used++] = {cw, 1};
      if (t == 0) return false;
    }
  }
  return true;
}

}  // namespace

double poisson_cdf(std::uint32_t k, double lambda) { return poisson_cdf_impl(k, lambda); }

// ------------------------------------------------------------------- NoEcc

DecodeOutcome NoEcc::decode(std::uint64_t, std::uint64_t bit_errors, sim::Rng&) const {
  DecodeOutcome out;
  out.correctable = bit_errors == 0;
  out.residual_errors = bit_errors;
  return out;
}

// -------------------------------------------------------------------- BCH

std::string BchEcc::name() const {
  return "BCH t=" + std::to_string(t_) + "/" + std::to_string(codeword_bits_ / 8) + "B";
}

double BchEcc::page_success_probability(std::uint64_t page_bits, std::uint64_t bit_errors) const {
  return all_codewords_ok_probability(t_, codewords_in_page(page_bits, codeword_bits_),
                                      bit_errors);
}

DecodeOutcome BchEcc::decode(std::uint64_t page_bits, std::uint64_t bit_errors,
                             sim::Rng& rng) const {
  DecodeOutcome out;
  if (bit_errors == 0) return out;
  const std::uint64_t n_cw = codewords_in_page(page_bits, codeword_bits_);
  bool ok;
  if (bit_errors <= kExactThreshold) {
    ok = exact_assignment_ok(t_, n_cw, bit_errors, rng);
  } else {
    ok = rng.chance(all_codewords_ok_probability(t_, n_cw, bit_errors));
  }
  out.correctable = ok;
  out.residual_errors = ok ? 0 : bit_errors;
  return out;
}

// ------------------------------------------------------------------- LDPC

LdpcEcc::LdpcEcc() : LdpcEcc(Params{}) {}

std::string LdpcEcc::name() const {
  return "LDPC t=" + std::to_string(params_.t_hard) + "+" + std::to_string(params_.max_retries) +
         "r";
}

DecodeOutcome LdpcEcc::decode(std::uint64_t page_bits, std::uint64_t bit_errors,
                              sim::Rng& rng) const {
  DecodeOutcome out;
  if (bit_errors == 0) return out;
  const std::uint64_t codeword_bits = params_.codeword_bytes * 8ULL;
  const std::uint64_t n_cw = codewords_in_page(page_bits, codeword_bits);
  for (std::uint32_t retry = 0; retry <= params_.max_retries; ++retry) {
    const auto t_eff = static_cast<std::uint32_t>(
        static_cast<double>(params_.t_hard) * (1.0 + params_.soft_gain * retry));
    bool ok;
    if (bit_errors <= kExactThreshold && retry == 0) {
      ok = exact_assignment_ok(t_eff, n_cw, bit_errors, rng);
    } else {
      ok = rng.chance(all_codewords_ok_probability(t_eff, n_cw, bit_errors));
    }
    if (ok) {
      out.correctable = true;
      out.soft_retries = retry;
      out.extra_latency = params_.retry_latency * retry;
      out.residual_errors = 0;
      return out;
    }
  }
  out.correctable = false;
  out.soft_retries = params_.max_retries;
  out.extra_latency = params_.retry_latency * params_.max_retries;
  out.residual_errors = bit_errors;
  return out;
}

std::unique_ptr<EccScheme> make_ecc(EccKind kind) {
  switch (kind) {
    case EccKind::kNone: return std::make_unique<NoEcc>();
    case EccKind::kBch: return std::make_unique<BchEcc>();
    case EccKind::kLdpc: return std::make_unique<LdpcEcc>();
  }
  return std::make_unique<BchEcc>();
}

const char* to_string(EccKind kind) {
  switch (kind) {
    case EccKind::kNone: return "none";
    case EccKind::kBch: return "BCH";
    case EccKind::kLdpc: return "LDPC";
  }
  return "?";
}

// ------------------------------------------------- Hamming (72,64) SEC-DED
//
// Codeword positions 1..71; positions that are powers of two hold the seven
// Hamming check bits; the remaining 64 positions hold data bits in order.
// An eighth, overall-parity bit covers everything (stored in parity bit 7).

namespace {

constexpr bool is_pow2(unsigned p) { return (p & (p - 1)) == 0; }

/// data-bit index -> codeword position (1..71), computed once.
struct PositionTable {
  std::array<std::uint8_t, 64> data_to_pos{};
  std::array<std::int8_t, 72> pos_to_data{};
  constexpr PositionTable() {
    for (auto& v : pos_to_data) v = -1;
    unsigned d = 0;
    for (unsigned p = 1; p <= 71; ++p) {
      if (is_pow2(p)) continue;
      data_to_pos[d] = static_cast<std::uint8_t>(p);
      pos_to_data[p] = static_cast<std::int8_t>(d);
      ++d;
    }
  }
};
constexpr PositionTable kTable{};

}  // namespace

HammingSecDed::Codeword HammingSecDed::encode(std::uint64_t data) {
  unsigned syn = 0;
  for (unsigned d = 0; d < 64; ++d) {
    if ((data >> d) & 1ULL) syn ^= kTable.data_to_pos[d];
  }
  // Check bit j must equal bit j of the data syndrome so the full syndrome
  // cancels to zero.
  std::uint8_t parity = static_cast<std::uint8_t>(syn & 0x7f);
  // Overall parity over data bits and the seven check bits.
  const unsigned ones =
      static_cast<unsigned>(std::popcount(data)) + static_cast<unsigned>(std::popcount(syn & 0x7fu));
  if (ones & 1u) parity |= 0x80;
  return Codeword{data, parity};
}

std::uint8_t HammingSecDed::syndrome_of(const Codeword& cw) {
  unsigned syn = 0;
  for (unsigned d = 0; d < 64; ++d) {
    if ((cw.data >> d) & 1ULL) syn ^= kTable.data_to_pos[d];
  }
  for (unsigned j = 0; j < 7; ++j) {
    if ((cw.parity >> j) & 1u) syn ^= (1u << j);
  }
  return static_cast<std::uint8_t>(syn);
}

HammingSecDed::Result HammingSecDed::decode(Codeword& cw) {
  const std::uint8_t syn = syndrome_of(cw);
  const unsigned ones = static_cast<unsigned>(std::popcount(cw.data)) +
                        static_cast<unsigned>(std::popcount(cw.parity));
  const bool overall_odd = (ones & 1u) != 0;

  if (syn == 0 && !overall_odd) return Result::kClean;

  if (overall_odd) {
    // Single-bit error at position `syn` (0 means the overall bit itself).
    if (syn == 0) {
      cw.parity ^= 0x80;
    } else if (is_pow2(syn)) {
      unsigned j = 0;
      while ((1u << j) != syn) ++j;
      cw.parity ^= static_cast<std::uint8_t>(1u << j);
    } else if (syn <= 71 && kTable.pos_to_data[syn] >= 0) {
      cw.data ^= (1ULL << kTable.pos_to_data[syn]);
    } else {
      return Result::kDetectedDouble;  // syndrome points outside the code
    }
    return Result::kCorrectedSingle;
  }
  // Even overall parity with non-zero syndrome: two flips.
  return Result::kDetectedDouble;
}

}  // namespace pofi::nand
