// NAND geometry and physical addressing.
//
// A chip is planes x blocks x pages; a physical page number (PPN) addresses
// one page globally within a chip. Only touched blocks are materialised in
// memory, so multi-hundred-gigabyte devices stay cheap to simulate.
#pragma once

#include <cstdint>

namespace pofi::nand {

using Ppn = std::uint64_t;      ///< physical page number (chip-global)
using BlockId = std::uint64_t;  ///< physical block number (chip-global)

struct Geometry {
  std::uint32_t page_size_bytes = 16 * 1024;  ///< user data per page
  std::uint32_t pages_per_block = 256;
  std::uint32_t blocks_per_plane = 1024;
  std::uint32_t planes = 4;

  bool operator==(const Geometry&) const = default;

  [[nodiscard]] constexpr std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(blocks_per_plane) * planes;
  }
  [[nodiscard]] constexpr std::uint64_t total_pages() const {
    return total_blocks() * pages_per_block;
  }
  [[nodiscard]] constexpr std::uint64_t capacity_bytes() const {
    return total_pages() * page_size_bytes;
  }
  [[nodiscard]] constexpr std::uint64_t page_bits() const {
    return static_cast<std::uint64_t>(page_size_bytes) * 8;
  }

  [[nodiscard]] constexpr BlockId block_of(Ppn ppn) const { return ppn / pages_per_block; }
  [[nodiscard]] constexpr std::uint32_t page_in_block(Ppn ppn) const {
    return static_cast<std::uint32_t>(ppn % pages_per_block);
  }
  [[nodiscard]] constexpr std::uint32_t plane_of(Ppn ppn) const {
    return static_cast<std::uint32_t>(block_of(ppn) % planes);
  }
  [[nodiscard]] constexpr Ppn first_page(BlockId b) const {
    return static_cast<Ppn>(b) * pages_per_block;
  }

  /// Geometry for a device of roughly `gib` GiB of user capacity, keeping
  /// page/block shape fixed and scaling block count.
  [[nodiscard]] static Geometry for_capacity_gib(std::uint32_t gib) {
    Geometry g;
    const std::uint64_t want = static_cast<std::uint64_t>(gib) << 30;
    const std::uint64_t block_bytes =
        static_cast<std::uint64_t>(g.page_size_bytes) * g.pages_per_block;
    const std::uint64_t blocks = (want + block_bytes - 1) / block_bytes;
    g.blocks_per_plane = static_cast<std::uint32_t>((blocks + g.planes - 1) / g.planes);
    return g;
  }
};

/// Cell technology. Determines levels per cell, timing class, raw BER and the
/// paired-page topology (shared wordlines).
enum class CellTech : std::uint8_t { kSlc, kMlc, kTlc };

[[nodiscard]] constexpr int bits_per_cell(CellTech t) {
  switch (t) {
    case CellTech::kSlc: return 1;
    case CellTech::kMlc: return 2;
    case CellTech::kTlc: return 3;
  }
  return 1;
}

[[nodiscard]] constexpr const char* to_string(CellTech t) {
  switch (t) {
    case CellTech::kSlc: return "SLC";
    case CellTech::kMlc: return "MLC";
    case CellTech::kTlc: return "TLC";
  }
  return "?";
}

/// Role a page plays on its wordline. Upper/extra pages are the slow, late
/// programming passes whose interruption corrupts already-programmed lower
/// pages — the paper's "previously written data" corruption channel.
enum class PageRole : std::uint8_t { kLower, kUpper, kExtra };

[[nodiscard]] constexpr PageRole page_role(CellTech tech, std::uint32_t page_in_block) {
  switch (tech) {
    case CellTech::kSlc: return PageRole::kLower;
    case CellTech::kMlc: return (page_in_block % 2 == 0) ? PageRole::kLower : PageRole::kUpper;
    case CellTech::kTlc:
      switch (page_in_block % 3) {
        case 0: return PageRole::kLower;
        case 1: return PageRole::kUpper;
        default: return PageRole::kExtra;
      }
  }
  return PageRole::kLower;
}

/// Index of the first page sharing this page's wordline group. Pages
/// [base, base + bits_per_cell) form the shared group.
[[nodiscard]] constexpr std::uint32_t wordline_base(CellTech tech, std::uint32_t page_in_block) {
  const auto group = static_cast<std::uint32_t>(bits_per_cell(tech));
  return (page_in_block / group) * group;
}

}  // namespace pofi::nand
