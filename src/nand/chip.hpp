// NandChip: an asynchronous, power-aware NAND flash die model.
//
// Operations are queued per plane (one in-flight op per plane, as on real
// dies) and complete after technology-accurate latencies. A power loss
// freezes the die: queued ops vanish, the in-flight op on each plane is
// interrupted at an ISPP-step boundary and the page (and, for upper-page
// passes, its already-programmed wordline partners) takes damage accordingly.
// This is the physical substrate for every failure the paper observes.
#pragma once

#include <cstdint>
#include <string_view>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "nand/block_arena.hpp"
#include "nand/ecc.hpp"
#include "nand/geometry.hpp"
#include "nand/page.hpp"
#include "nand/timing.hpp"
#include "obs/fwd.hpp"
#include "sim/inplace_function.hpp"
#include "sim/ring_queue.hpp"
#include "sim/simulator.hpp"

namespace pofi::nand {

struct ReadResult {
  enum class Status : std::uint8_t { kOk, kUncorrectable, kPowerLost };
  Status status = Status::kOk;
  std::uint64_t content = kErasedContent;  ///< tag as seen through ECC
  std::uint64_t raw_errors = 0;
  std::uint32_t soft_retries = 0;

  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

struct OpResult {
  enum class Status : std::uint8_t { kOk, kPowerLost, kBadBlock, kOrderViolation };
  Status status = Status::kOk;
  [[nodiscard]] bool ok() const { return status == Status::kOk; }
};

struct ChipStats {
  std::uint64_t reads = 0;
  std::uint64_t programs = 0;
  std::uint64_t erases = 0;
  std::uint64_t uncorrectable_reads = 0;
  std::uint64_t interrupted_programs = 0;
  std::uint64_t interrupted_erases = 0;
  std::uint64_t paired_page_upsets = 0;
  std::uint64_t dropped_queued_ops = 0;
  std::uint64_t order_violations = 0;
};

class NandChip {
 public:
  struct Config {
    Geometry geometry;
    CellTech tech = CellTech::kMlc;
    EccKind ecc = EccKind::kBch;
    std::uint32_t endurance_pe_cycles = 3000;  ///< erases before a block wears out
    /// Pre-age the die: every block starts with this many P/E cycles (wear
    /// studies; worn cells also have wider Vt distributions, making
    /// interrupted programs and paired-page upsets more damaging).
    std::uint32_t initial_pe_cycles = 0;
    bool enforce_program_order = true;

    bool operator==(const Config&) const = default;
  };

  /// Completion callbacks ride the event hot path (one per flash op), so
  /// they use inline-storage callables: no heap allocation per operation.
  /// 128 bytes covers the fattest controller continuation (the FTL's PoR
  /// scan chain); oversized captures are a compile error.
  using ReadCallback = sim::InplaceFunction<void(ReadResult), 128>;
  using OpCallback = sim::InplaceFunction<void(OpResult), 128>;

  /// `rng_label` keeps per-die random streams independent when several
  /// dies share one simulator (see ChipArray).
  NandChip(sim::Simulator& simulator, Config config,
           std::string_view rng_label = "nand-chip");

  NandChip(const NandChip&) = delete;
  NandChip& operator=(const NandChip&) = delete;

  // --- Asynchronous command interface (used by the SSD controller) --------
  void read(Ppn ppn, ReadCallback cb);
  void program(Ppn ppn, std::uint64_t content, OpCallback cb) {
    program(ppn, content, Oob{}, std::move(cb));
  }
  /// Program with spare-area metadata (lpn + write sequence), which a
  /// power-on recovery scan can later use to rebuild the mapping.
  void program(Ppn ppn, std::uint64_t content, Oob oob, OpCallback cb);
  void erase(BlockId block, OpCallback cb);

  /// Read only the spare area: same timing and ECC fate as a page read.
  struct OobResult {
    bool ok = false;  ///< false when the page is uncorrectable/unpowered
    Oob oob;
  };
  using OobCallback = sim::InplaceFunction<void(OobResult), 128>;
  void read_oob(Ppn ppn, OobCallback cb);

  // --- Power interface -----------------------------------------------------
  /// Rail crossed the die's cutoff: interrupt in-flight work, drop queues.
  void on_power_lost();
  /// Rail restored; the die is usable again (persistent state kept).
  void on_power_good();
  [[nodiscard]] bool powered() const { return powered_; }

  /// Session reset: back to a factory-fresh, unpowered die with the arena's
  /// slabs retained. Precondition: the simulator's event queue has already
  /// been drained (completion events for in-flight ops must not fire into a
  /// reset die). The per-die RNG stream is re-forked from the (reseeded)
  /// master under the original label.
  void reset();

  /// True when no plane has in-flight or queued work (snapshot precondition).
  [[nodiscard]] bool quiescent() const {
    for (const Plane& p : planes_) {
      if (p.busy.has_value() || !p.queue.empty()) return false;
    }
    return true;
  }

  /// Copyable die state at a quiescent boundary: persistent arena contents,
  /// RNG position, power flag and statistics. Plane queues are empty by the
  /// quiescence precondition and are not captured; restore() clears them so
  /// a dirty (post-crash) die can be rewound.
  struct StateImage {
    std::array<std::uint64_t, 4> rng_state{};
    bool powered = false;
    BlockArena::StateImage arena;
    ChipStats stats;
  };

  void snapshot(StateImage& out) const {
    out.rng_state = rng_.state();
    out.powered = powered_;
    arena_.snapshot(out.arena);
    out.stats = stats_;
  }

  void restore(const StateImage& image) {
    rng_.set_state(image.rng_state);
    powered_ = image.powered;
    for (Plane& p : planes_) {
      p.busy.reset();
      p.queue.clear();
    }
    arena_.restore(image.arena);
    stats_ = image.stats;
  }

  // --- Inspection (tests, analyzer ground-truthing) ------------------------
  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] const Geometry& geometry() const { return config_.geometry; }
  [[nodiscard]] const ChipStats& stats() const { return stats_; }
  [[nodiscard]] const EccScheme& ecc() const { return *ecc_; }

  /// Direct page peek without timing or ECC (ground truth for tests). The
  /// page state lives in SoA lanes, so the returned pointer targets a
  /// per-chip snapshot slot: it stays valid (same address) until the next
  /// peek on this die, which overwrites it.
  [[nodiscard]] const Page* peek(Ppn ppn) const;
  /// Synchronous read through the full error/ECC path, bypassing timing.
  /// Used by tests; the production path is the async read().
  [[nodiscard]] ReadResult read_now(Ppn ppn);

  [[nodiscard]] std::uint32_t erase_count(BlockId b) const;
  [[nodiscard]] bool is_bad(BlockId b) const;
  /// Number of materialised (touched) blocks.
  [[nodiscard]] std::size_t touched_blocks() const { return arena_.touched_blocks(); }

 private:
  struct InFlight {
    enum class Kind : std::uint8_t { kRead, kProgram, kErase, kReadOob } kind = Kind::kRead;
    Ppn ppn = 0;
    BlockId block = 0;
    std::uint64_t content = 0;
    Oob oob;
    sim::TimePoint start;
    sim::Duration duration;
    ReadCallback read_cb;
    OpCallback op_cb;
    OobCallback oob_cb;
    sim::EventId completion;
  };
  struct Plane {
    std::optional<InFlight> busy;
    sim::RingQueue<InFlight> queue;
  };

  [[nodiscard]] double wear_severity(BlockArena::Slot slot) const;

  void enqueue(std::uint32_t plane_idx, InFlight op);
  void start_next(std::uint32_t plane_idx);
  void complete(std::uint32_t plane_idx);

  void finish_read(InFlight& op);
  void finish_read_oob(InFlight& op);
  void finish_program(InFlight& op);
  void finish_erase(InFlight& op);

  /// Raw bit-error count for reading page `pib` of the block at `slot` now.
  [[nodiscard]] std::uint64_t raw_errors_for(BlockArena::Slot slot, std::uint32_t pib);
  [[nodiscard]] ReadResult read_through_ecc(Ppn ppn);

  void interrupt_program(InFlight& op);
  void interrupt_erase(InFlight& op);
  void apply_paired_page_damage(BlockId block_id, std::uint32_t page_in_block, double severity);

  sim::Simulator& sim_;
  Config config_;
  Timing timing_;
  ErrorModel errors_;
  std::unique_ptr<EccScheme> ecc_;
  std::string rng_label_;  ///< kept so reset() re-forks the same stream
  sim::Rng rng_;
  bool powered_ = false;
  std::vector<Plane> planes_;
  BlockArena arena_;
  mutable Page peek_scratch_;  ///< snapshot slot backing peek()
  ChipStats stats_;

  // Observability handles (no-ops unless a registry is attached to sim_).
  // Registration is name-deduped, so the dies of a ChipArray aggregate.
  obs::MetricId obs_ispp_started_ = obs::kNoMetric;
  obs::MetricId obs_ispp_interrupted_ = obs::kNoMetric;
  obs::MetricId obs_erase_interrupted_ = obs::kNoMetric;
  obs::MetricId obs_bit_errors_ = obs::kNoMetric;
  obs::MetricId obs_ecc_corrected_ = obs::kNoMetric;
  obs::MetricId obs_ecc_uncorrectable_ = obs::kNoMetric;
  obs::MetricId obs_paired_upsets_ = obs::kNoMetric;
  obs::MetricId obs_blocks_retired_ = obs::kNoMetric;
};

}  // namespace pofi::nand
