// Per-technology NAND operation timing and error-rate parameters.
//
// Values follow public datasheet/characterisation ranges (Grupp MICRO'09,
// Cai HPCA'15). Program operations execute as ISPP (incremental step pulse
// programming) loops of program-read-verify steps; the step count is what a
// power fault can land between.
#pragma once

#include "nand/geometry.hpp"
#include "sim/time.hpp"

namespace pofi::nand {

struct Timing {
  sim::Duration read_page;
  sim::Duration program_lower;   ///< lower-page (fast pass) program time
  sim::Duration program_upper;   ///< upper-page (fine pass) program time
  sim::Duration program_extra;   ///< TLC third pass
  sim::Duration erase_block;
  std::uint32_t ispp_steps_lower;
  std::uint32_t ispp_steps_upper;
  std::uint32_t ispp_steps_extra;

  [[nodiscard]] sim::Duration program_time(PageRole role) const {
    switch (role) {
      case PageRole::kLower: return program_lower;
      case PageRole::kUpper: return program_upper;
      case PageRole::kExtra: return program_extra;
    }
    return program_lower;
  }
  [[nodiscard]] std::uint32_t ispp_steps(PageRole role) const {
    switch (role) {
      case PageRole::kLower: return ispp_steps_lower;
      case PageRole::kUpper: return ispp_steps_upper;
      case PageRole::kExtra: return ispp_steps_extra;
    }
    return ispp_steps_lower;
  }
};

struct ErrorModel {
  double base_ber = 1e-7;          ///< raw bit error rate of a settled page
  /// Wear: added BER per P/E cycle (raw BER reaches ~1e-4 at a 3k-cycle
  /// MLC endurance limit, per public characterisation data).
  double ber_per_pe_cycle = 3.3e-8;
  double read_disturb_ber = 5e-12; ///< added BER per read of a sibling page
  double program_disturb_ber = 2e-10;  ///< added BER per program in block
  /// Interrupted-program residual BER: 0.5 * (1 - progress)^shape + base.
  double interrupt_shape = 3.0;
  /// Fraction of paired-page cells upset when a later wordline pass is
  /// interrupted mid-ISPP (scaled by how incomplete the pass was).
  double paired_page_upset_ber = 2e-3;
};

[[nodiscard]] inline Timing timing_for(CellTech tech) {
  using sim::Duration;
  switch (tech) {
    case CellTech::kSlc:
      return Timing{Duration::us(25), Duration::us(200), Duration::us(200), Duration::us(200),
                    Duration::ms_f(1.5), 4, 4, 4};
    case CellTech::kMlc:
      return Timing{Duration::us(50), Duration::us(400), Duration::us(900), Duration::us(900),
                    Duration::ms(3), 6, 10, 10};
    case CellTech::kTlc:
      return Timing{Duration::us(75), Duration::us(500), Duration::us(900), Duration::ms_f(1.4),
                    Duration::ms(4), 8, 12, 16};
  }
  return Timing{};
}

[[nodiscard]] inline ErrorModel error_model_for(CellTech tech) {
  ErrorModel m;
  switch (tech) {
    case CellTech::kSlc:
      m.base_ber = 1e-9;
      m.paired_page_upset_ber = 0.0;  // no shared-wordline partner
      break;
    case CellTech::kMlc:
      m.base_ber = 1e-7;
      m.paired_page_upset_ber = 1.5e-2;  // beyond BCH t=40/1KB at full severity
      break;
    case CellTech::kTlc:
      m.base_ber = 8e-7;
      m.paired_page_upset_ber = 2.5e-2;
      m.interrupt_shape = 2.5;  // wider vulnerable window
      break;
  }
  return m;
}

}  // namespace pofi::nand
