#include "nand/block_arena.hpp"

#include <algorithm>
#include <cassert>

namespace pofi::nand {

BlockArena::BlockArena(const Geometry& geometry, std::uint32_t initial_pe_cycles)
    : pages_per_block_(geometry.pages_per_block),
      words_per_lane_((geometry.pages_per_block + 31) / 32),
      initial_pe_cycles_(initial_pe_cycles),
      total_blocks_(geometry.total_blocks()) {}

BlockArena::Slot BlockArena::touch(BlockId b) {
  if (b >= block_index_.size()) {
    // Double the index up to the geometry (tests may address past it; then
    // grow to exactly cover). 4 bytes/block keeps even terabyte drives cheap.
    std::uint64_t grown = std::max<std::uint64_t>(block_index_.size() * 2, 1024);
    grown = std::min(std::max(grown, b + 1), std::max(total_blocks_, b + 1));
    block_index_.resize(grown, kNoSlot);
  }
  Slot s = block_index_[b];
  if (s != kNoSlot) return s;

  s = static_cast<Slot>(slots_++);
  block_index_[b] = s;
  erase_count_.push_back(initial_pe_cycles_);
  reads_since_erase_.push_back(0);
  programs_since_erase_.push_back(0);
  next_program_page_.push_back(0);
  flags_.push_back(0);
  lane_.push_back(kNoLane);
  upset_count_.push_back(0);
  progress_count_.push_back(0);
  overflow_count_.push_back(0);
  return s;
}

std::uint32_t BlockArena::ensure_lane(Slot s) {
  std::uint32_t lane = lane_[s];
  if (lane != kNoLane) return lane;
  if (!free_lanes_.empty()) {
    lane = free_lanes_.back();
    free_lanes_.pop_back();
  } else {
    if (lanes_ % kSlabBlocks == 0) {
      // New slab: extend every page lane by kSlabBlocks blocks' worth.
      const std::size_t slabs = lanes_ / kSlabBlocks + 1;
      status_.resize(slabs * kSlabBlocks * words_per_lane_);
      content_.resize(slabs * kSlabBlocks * pages_per_block_);
      oob_lpn_.resize(slabs * kSlabBlocks * pages_per_block_);
      oob_seq_.resize(slabs * kSlabBlocks * pages_per_block_);
    }
    lane = lanes_++;
  }
  // Scrub to the erased state (recycled lanes carry their last tenant's
  // bits; fresh slab memory is zero-filled, which is wrong for content/lpn).
  std::fill_n(status_.begin() + static_cast<std::size_t>(lane) * words_per_lane_,
              words_per_lane_, 0ULL);
  const std::size_t base = static_cast<std::size_t>(lane) * pages_per_block_;
  std::fill_n(content_.begin() + base, pages_per_block_, kU32Sentinel);
  std::fill_n(oob_lpn_.begin() + base, pages_per_block_, kU32Sentinel);
  std::fill_n(oob_seq_.begin() + base, pages_per_block_, 0U);
  lane_[s] = lane;
  return lane;
}

std::uint32_t BlockArena::narrow(std::uint64_t value, OverflowMap& overflow, Slot s,
                                 std::uint32_t pib, std::uint64_t sentinel) {
  if (value == sentinel) return kU32Sentinel;
  if (value >= kU32Overflow) {
    // Too wide for the lane (or collides with a marker): exact value goes to
    // the side table. Entries are purged on erase, so a live page has at
    // most one, and insert_or_assign keeps re-programs (impossible today,
    // the program cursor forbids them) correct anyway.
    if (overflow.insert_or_assign(page_key(s, pib), value).second) {
      overflow_count_[s] += 1;
    }
    return kU32Overflow;
  }
  return static_cast<std::uint32_t>(value);
}

void BlockArena::write_payload(std::uint32_t lane, Slot s, std::uint32_t pib,
                               std::uint64_t content, Oob oob) {
  const std::size_t idx = static_cast<std::size_t>(lane) * pages_per_block_ + pib;
  content_[idx] = narrow(content, content_overflow_, s, pib, kErasedContent);
  oob_lpn_[idx] = narrow(oob.lpn, lpn_overflow_, s, pib, ~0ULL);
  oob_seq_[idx] = narrow(oob.seq, seq_overflow_, s, pib, 0);
}

void BlockArena::set_programmed(Slot s, std::uint32_t pib, std::uint64_t content, Oob oob) {
  const std::uint32_t lane = ensure_lane(s);
  set_status(lane, pib, PageStatus::kValid);
  write_payload(lane, s, pib, content, oob);
  // kValid implies progress 1.0; no side entry can exist here (the program
  // cursor never revisits a page that took an interrupt without an erase).
}

void BlockArena::set_partial(Slot s, std::uint32_t pib, float progress, std::uint64_t content,
                             Oob oob) {
  const std::uint32_t lane = ensure_lane(s);
  set_status(lane, pib, PageStatus::kPartial);
  write_payload(lane, s, pib, content, oob);
  if (progress_.insert_or_assign(page_key(s, pib), progress).second) {
    progress_count_[s] += 1;
  }
}

void BlockArena::corrupt_page(Slot s, std::uint32_t pib) {
  const std::uint32_t lane = lane_[s];
  assert(lane != kNoLane);  // only kValid/kPartial pages corrupt
  // Freeze the pre-corruption progress: a kValid page was at 1.0 (implied by
  // its status until now), a kPartial page already has its side entry.
  if (status(s, pib) == PageStatus::kValid) {
    if (progress_.insert_or_assign(page_key(s, pib), 1.0f).second) {
      progress_count_[s] += 1;
    }
  }
  set_status(lane, pib, PageStatus::kCorrupt);
}

void BlockArena::set_upset_errors(Slot s, std::uint32_t pib, std::uint32_t value) {
  if (value == 0) {
    if (upset_count_[s] != 0 && upsets_.erase(page_key(s, pib)) != 0) {
      upset_count_[s] -= 1;
    }
    return;
  }
  if (upsets_.insert_or_assign(page_key(s, pib), value).second) {
    upset_count_[s] += 1;
  }
}

void BlockArena::erase_block(Slot s) {
  if (lane_[s] != kNoLane) {
    free_lanes_.push_back(lane_[s]);
    lane_[s] = kNoLane;
  }
  if (progress_count_[s] != 0 || upset_count_[s] != 0 || overflow_count_[s] != 0) {
    for (std::uint32_t pib = 0; pib < pages_per_block_; ++pib) {
      const std::uint64_t key = page_key(s, pib);
      progress_.erase(key);
      upsets_.erase(key);
      content_overflow_.erase(key);
      lpn_overflow_.erase(key);
      seq_overflow_.erase(key);
    }
    progress_count_[s] = 0;
    upset_count_[s] = 0;
    overflow_count_[s] = 0;
  }
  reads_since_erase_[s] = 0;
  programs_since_erase_[s] = 0;
  next_program_page_[s] = 0;
  flags_[s] &= static_cast<std::uint8_t>(~kFlagPartialErase);
}

void BlockArena::reset() {
  // The index keeps its size (find() on an unmaterialised block reads a
  // kNoSlot hole either way); touch() re-fills holes from here on.
  std::fill(block_index_.begin(), block_index_.end(), kNoSlot);
  slots_ = 0;
  erase_count_.clear();
  reads_since_erase_.clear();
  programs_since_erase_.clear();
  next_program_page_.clear();
  flags_.clear();
  lane_.clear();
  upset_count_.clear();
  progress_count_.clear();
  overflow_count_.clear();
  // Page-lane slabs stay allocated; ensure_lane resizes within capacity and
  // scrubs each lane on binding, so stale bytes are unreachable.
  free_lanes_.clear();
  lanes_ = 0;
  progress_.clear();
  upsets_.clear();
  content_overflow_.clear();
  lpn_overflow_.clear();
  seq_overflow_.clear();
}

Page BlockArena::snapshot(Slot s, std::uint32_t pib) const {
  Page pg;
  pg.status = status(s, pib);
  pg.progress = progress(s, pib);
  pg.content = content(s, pib);
  pg.oob = oob(s, pib);
  pg.upset_errors = upset_errors(s, pib);
  return pg;
}

}  // namespace pofi::nand
