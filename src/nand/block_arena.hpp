// BlockArena: slab-backed struct-of-arrays storage for NAND block/page state.
//
// The chip used to keep an unordered_map<BlockId, Block> of ~40-byte AoS Page
// vectors; every program/read/erase paid a hash probe plus pointer-chasing
// into a node-allocated block. The arena replaces that with:
//
//   block_index_ : flat BlockId -> Slot vector (lazily grown, kNoSlot holes)
//                  — sparse `touched_blocks()` semantics are preserved: a
//                  block occupies a Slot only after its first touch.
//   per-Slot SoA : erase/read/program counters, program cursor, flags — one
//                  dense u32/u8 lane per field, indexed by Slot.
//   page lanes   : dense per-block page state (2-bit packed status, u32
//                  content / OOB lpn / OOB seq), allocated from slab-granular
//                  flat arrays only once a block is first programmed and
//                  recycled through a free list on clean erase — an
//                  erased-only block carries no page storage at all.
//   side tables  : rare state that exists only around fault sites (ISPP
//                  progress on interrupted pages, discrete upset errors,
//                  64-bit values too wide for the u32 page lanes) lives in
//                  hash side tables keyed by (Slot, page), with per-Slot
//                  entry counts so the hot path can skip the lookup when a
//                  block has none (the overwhelmingly common case).
//
// 64-bit narrowing is exact, not lossy: content tags are allocated
// sequentially by the shadow store and OOB sequence numbers count host
// writes, so they fit u32 for any simulatable run; the rare wide values
// (journal tags ORed with a high marker, ~0 sentinels) divert to the
// overflow side table via in-band markers. Decoding reproduces the original
// u64 bit-for-bit in every case.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nand/geometry.hpp"
#include "nand/page.hpp"

namespace pofi::nand {

class BlockArena {
 public:
  /// Dense index of a materialised block. Slots are never recycled.
  using Slot = std::uint32_t;
  static constexpr Slot kNoSlot = ~Slot{0};

  BlockArena(const Geometry& geometry, std::uint32_t initial_pe_cycles);

  // --- Block lookup -------------------------------------------------------
  /// Materialise `b` on first touch (erase_count starts at the configured
  /// pre-age); returns its slot.
  Slot touch(BlockId b);
  /// Slot of `b`, or kNoSlot if never touched.
  [[nodiscard]] Slot find(BlockId b) const {
    return b < block_index_.size() ? block_index_[b] : kNoSlot;
  }
  [[nodiscard]] std::size_t touched_blocks() const { return slots_; }

  // --- Per-block counters and flags --------------------------------------
  [[nodiscard]] std::uint32_t erase_count(Slot s) const { return erase_count_[s]; }
  void set_erase_count(Slot s, std::uint32_t v) { erase_count_[s] = v; }
  [[nodiscard]] std::uint32_t reads_since_erase(Slot s) const { return reads_since_erase_[s]; }
  void bump_reads_since_erase(Slot s) { reads_since_erase_[s] += 1; }
  [[nodiscard]] std::uint32_t programs_since_erase(Slot s) const {
    return programs_since_erase_[s];
  }
  void bump_programs_since_erase(Slot s) { programs_since_erase_[s] += 1; }
  [[nodiscard]] std::uint32_t next_program_page(Slot s) const { return next_program_page_[s]; }
  void set_next_program_page(Slot s, std::uint32_t v) { next_program_page_[s] = v; }
  [[nodiscard]] bool bad(Slot s) const { return (flags_[s] & kFlagBad) != 0; }
  void set_bad(Slot s) { flags_[s] |= kFlagBad; }
  [[nodiscard]] bool partially_erased(Slot s) const {
    return (flags_[s] & kFlagPartialErase) != 0;
  }
  void set_partially_erased(Slot s) { flags_[s] |= kFlagPartialErase; }

  // --- Page state (hot path) ----------------------------------------------
  [[nodiscard]] PageStatus status(Slot s, std::uint32_t pib) const {
    const std::uint32_t lane = lane_[s];
    if (lane == kNoLane) return PageStatus::kErased;
    const std::uint64_t word = status_[lane * words_per_lane_ + (pib >> 5)];
    return static_cast<PageStatus>((word >> ((pib & 31U) * 2)) & 3U);
  }

  [[nodiscard]] std::uint64_t content(Slot s, std::uint32_t pib) const {
    const std::uint32_t lane = lane_[s];
    if (lane == kNoLane) return kErasedContent;
    return widen(content_[lane * pages_per_block_ + pib], content_overflow_, s, pib,
                 kErasedContent);
  }

  [[nodiscard]] Oob oob(Slot s, std::uint32_t pib) const {
    const std::uint32_t lane = lane_[s];
    if (lane == kNoLane) return Oob{};
    Oob o;
    o.lpn = widen(oob_lpn_[lane * pages_per_block_ + pib], lpn_overflow_, s, pib, ~0ULL);
    o.seq = widen(oob_seq_[lane * pages_per_block_ + pib], seq_overflow_, s, pib, 0);
    return o;
  }

  /// Effective ISPP progress: kValid pages are complete (1.0), erased pages
  /// untouched (0.0); interrupted/corrupted pages carry a side-table entry.
  [[nodiscard]] float progress(Slot s, std::uint32_t pib) const {
    switch (status(s, pib)) {
      case PageStatus::kErased: return 0.0f;
      case PageStatus::kValid: return 1.0f;
      default: break;
    }
    const auto it = progress_.find(page_key(s, pib));
    return it == progress_.end() ? 0.0f : it->second;
  }

  [[nodiscard]] std::uint32_t upset_errors(Slot s, std::uint32_t pib) const {
    if (upset_count_[s] == 0) return 0;  // common case: no fault damage here
    const auto it = upsets_.find(page_key(s, pib));
    return it == upsets_.end() ? 0 : it->second;
  }

  /// AoS view of one page, assembled from the lanes (peek/debug path).
  [[nodiscard]] Page snapshot(Slot s, std::uint32_t pib) const;

  // --- Page mutation ------------------------------------------------------
  /// Completed program: page becomes kValid with the given payload.
  void set_programmed(Slot s, std::uint32_t pib, std::uint64_t content, Oob oob);
  /// Interrupted program: page becomes kPartial at `progress` completion.
  void set_partial(Slot s, std::uint32_t pib, float progress, std::uint64_t content, Oob oob);
  /// Interrupted erase landed on a kValid/kPartial page: cell states are now
  /// undefined. Content/OOB/upsets are untouched (they were, after all,
  /// physically written); the pre-corruption progress is preserved.
  void corrupt_page(Slot s, std::uint32_t pib);
  /// Overwrite the discrete-upset error count (0 removes the entry).
  void set_upset_errors(Slot s, std::uint32_t pib, std::uint32_t value);
  /// Whether any page of this block carries upset errors (cheap pre-check).
  [[nodiscard]] bool has_upsets(Slot s) const { return upset_count_[s] != 0; }

  /// Clean erase: all pages revert to kErased, per-erase counters and the
  /// partial-erase flag reset, the page lane (if any) returns to the free
  /// list. erase_count and the bad flag are the caller's business.
  void erase_block(Slot s);

  /// Session reset: back to the just-constructed state (no touched blocks,
  /// no lanes, empty side tables) while keeping every vector's capacity and
  /// the slab storage. Lane bytes are left stale — ensure_lane scrubs each
  /// lane to the erased state when it is next bound, exactly as it does for
  /// recycled lanes.
  void reset();

  /// Full copyable state of the arena. Captured with bulk lane copies; the
  /// image's containers are reused across capture cycles (vector/map
  /// assignment keeps capacity/buckets), so warmed snapshots allocate
  /// nothing.
  struct StateImage {
    std::vector<Slot> block_index;
    std::size_t slots = 0;
    std::vector<std::uint32_t> erase_count;
    std::vector<std::uint32_t> reads_since_erase;
    std::vector<std::uint32_t> programs_since_erase;
    std::vector<std::uint32_t> next_program_page;
    std::vector<std::uint8_t> flags;
    std::vector<std::uint32_t> lane;
    std::vector<std::uint32_t> upset_count;
    std::vector<std::uint32_t> progress_count;
    std::vector<std::uint32_t> overflow_count;
    std::vector<std::uint64_t> status;
    std::vector<std::uint32_t> content;
    std::vector<std::uint32_t> oob_lpn;
    std::vector<std::uint32_t> oob_seq;
    std::vector<std::uint32_t> free_lanes;
    std::uint32_t lanes = 0;
    std::unordered_map<std::uint64_t, float> progress;
    std::unordered_map<std::uint64_t, std::uint32_t> upsets;
    std::unordered_map<std::uint64_t, std::uint64_t> content_overflow;
    std::unordered_map<std::uint64_t, std::uint64_t> lpn_overflow;
    std::unordered_map<std::uint64_t, std::uint64_t> seq_overflow;
  };

  void snapshot(StateImage& out) const {
    out.block_index = block_index_;
    out.slots = slots_;
    out.erase_count = erase_count_;
    out.reads_since_erase = reads_since_erase_;
    out.programs_since_erase = programs_since_erase_;
    out.next_program_page = next_program_page_;
    out.flags = flags_;
    out.lane = lane_;
    out.upset_count = upset_count_;
    out.progress_count = progress_count_;
    out.overflow_count = overflow_count_;
    out.status = status_;
    out.content = content_;
    out.oob_lpn = oob_lpn_;
    out.oob_seq = oob_seq_;
    out.free_lanes = free_lanes_;
    out.lanes = lanes_;
    out.progress = progress_;
    out.upsets = upsets_;
    out.content_overflow = content_overflow_;
    out.lpn_overflow = lpn_overflow_;
    out.seq_overflow = seq_overflow_;
  }

  void restore(const StateImage& image) {
    block_index_ = image.block_index;
    slots_ = image.slots;
    erase_count_ = image.erase_count;
    reads_since_erase_ = image.reads_since_erase;
    programs_since_erase_ = image.programs_since_erase;
    next_program_page_ = image.next_program_page;
    flags_ = image.flags;
    lane_ = image.lane;
    upset_count_ = image.upset_count;
    progress_count_ = image.progress_count;
    overflow_count_ = image.overflow_count;
    status_ = image.status;
    content_ = image.content;
    oob_lpn_ = image.oob_lpn;
    oob_seq_ = image.oob_seq;
    free_lanes_ = image.free_lanes;
    lanes_ = image.lanes;
    progress_ = image.progress;
    upsets_ = image.upsets;
    content_overflow_ = image.content_overflow;
    lpn_overflow_ = image.lpn_overflow;
    seq_overflow_ = image.seq_overflow;
  }

 private:
  static constexpr std::uint32_t kNoLane = ~std::uint32_t{0};
  static constexpr std::uint8_t kFlagBad = 1;
  static constexpr std::uint8_t kFlagPartialErase = 2;
  /// Page-lane storage grows in slabs of this many blocks.
  static constexpr std::uint32_t kSlabBlocks = 32;
  /// In-band markers in the u32 page lanes; see widen()/narrow().
  static constexpr std::uint32_t kU32Sentinel = 0xFFFFFFFFU;  ///< field's ~0/default
  static constexpr std::uint32_t kU32Overflow = 0xFFFFFFFEU;  ///< value in side table

  using OverflowMap = std::unordered_map<std::uint64_t, std::uint64_t>;

  [[nodiscard]] std::uint64_t page_key(Slot s, std::uint32_t pib) const {
    return static_cast<std::uint64_t>(s) * pages_per_block_ + pib;
  }

  [[nodiscard]] std::uint64_t widen(std::uint32_t narrow, const OverflowMap& overflow, Slot s,
                                    std::uint32_t pib, std::uint64_t sentinel) const {
    if (narrow == kU32Sentinel) return sentinel;
    if (narrow == kU32Overflow) return overflow.at(page_key(s, pib));
    return narrow;
  }

  std::uint32_t narrow(std::uint64_t value, OverflowMap& overflow, Slot s, std::uint32_t pib,
                       std::uint64_t sentinel);

  void set_status(std::uint32_t lane, std::uint32_t pib, PageStatus st) {
    std::uint64_t& word = status_[lane * words_per_lane_ + (pib >> 5)];
    const std::uint32_t shift = (pib & 31U) * 2;
    word = (word & ~(3ULL << shift)) | (static_cast<std::uint64_t>(st) << shift);
  }

  std::uint32_t ensure_lane(Slot s);
  void write_payload(std::uint32_t lane, Slot s, std::uint32_t pib, std::uint64_t content,
                     Oob oob);

  std::uint32_t pages_per_block_;
  std::uint32_t words_per_lane_;  ///< 2-bit-packed status words per block
  std::uint32_t initial_pe_cycles_;
  std::uint64_t total_blocks_;  ///< geometry hint; the index can exceed it

  std::vector<Slot> block_index_;  ///< BlockId -> Slot (kNoSlot holes)
  std::size_t slots_ = 0;

  // Per-Slot lanes (index: Slot).
  std::vector<std::uint32_t> erase_count_;
  std::vector<std::uint32_t> reads_since_erase_;
  std::vector<std::uint32_t> programs_since_erase_;
  std::vector<std::uint32_t> next_program_page_;
  std::vector<std::uint8_t> flags_;
  std::vector<std::uint32_t> lane_;           ///< page lane, kNoLane until programmed
  std::vector<std::uint32_t> upset_count_;    ///< side-table entries per Slot
  std::vector<std::uint32_t> progress_count_;
  std::vector<std::uint32_t> overflow_count_;

  // Page lanes (index: lane * pages_per_block_ + pib), slab-granular growth.
  std::vector<std::uint64_t> status_;  ///< 2 bits per page, padded per lane
  std::vector<std::uint32_t> content_;
  std::vector<std::uint32_t> oob_lpn_;
  std::vector<std::uint32_t> oob_seq_;
  std::vector<std::uint32_t> free_lanes_;
  std::uint32_t lanes_ = 0;  ///< lanes ever created (free or bound)

  // Sparse side tables, keyed by page_key().
  std::unordered_map<std::uint64_t, float> progress_;
  std::unordered_map<std::uint64_t, std::uint32_t> upsets_;
  OverflowMap content_overflow_;
  OverflowMap lpn_overflow_;
  OverflowMap seq_overflow_;
};

}  // namespace pofi::nand
