// ASCII table/series rendering for bench output.
//
// Every bench prints the paper's tables and figure series through this so
// the output is uniform and diffable run-to-run.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pofi::stats {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Convenience: format doubles/ints into cells.
  [[nodiscard]] static std::string fmt(double v, int precision = 2);
  [[nodiscard]] static std::string fmt(std::uint64_t v);
  [[nodiscard]] static std::string fmt(std::int64_t v);

  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// A labelled numeric series (one curve of a figure).
struct Series {
  std::string label;
  std::vector<double> values;
};

/// Render figure-style data: one row per x value, one column per series,
/// plus an optional ASCII sparkline per series underneath.
class FigureData {
 public:
  FigureData(std::string title, std::string x_label, std::vector<double> xs);

  FigureData& add_series(std::string label, std::vector<double> values);

  [[nodiscard]] std::string render() const;
  void print() const;

 private:
  std::string title_;
  std::string x_label_;
  std::vector<double> xs_;
  std::vector<Series> series_;
};

/// Section banner used between experiments in bench output.
void print_banner(const std::string& text);

}  // namespace pofi::stats
