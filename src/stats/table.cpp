#include "stats/table.hpp"

#include <algorithm>
#include <cstdio>

namespace pofi::stats {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::uint64_t v) { return std::to_string(v); }
std::string Table::fmt(std::int64_t v) { return std::to_string(v); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    out.resize(w, ' ');
    return out;
  };
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c]);
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += (c + 1 < headers_.size()) ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], widths[c]);
      out += (c + 1 < row.size()) ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

void Table::print() const { std::fputs(render().c_str(), stdout); }

FigureData::FigureData(std::string title, std::string x_label, std::vector<double> xs)
    : title_(std::move(title)), x_label_(std::move(x_label)), xs_(std::move(xs)) {}

FigureData& FigureData::add_series(std::string label, std::vector<double> values) {
  values.resize(xs_.size(), 0.0);
  series_.push_back(Series{std::move(label), std::move(values)});
  return *this;
}

std::string FigureData::render() const {
  std::string out = "== " + title_ + " ==\n";
  Table t([this] {
    std::vector<std::string> h{x_label_};
    for (const auto& s : series_) h.push_back(s.label);
    return h;
  }());
  for (std::size_t i = 0; i < xs_.size(); ++i) {
    std::vector<std::string> row{Table::fmt(xs_[i], 2)};
    for (const auto& s : series_) row.push_back(Table::fmt(s.values[i], 3));
    t.add_row(std::move(row));
  }
  out += t.render();

  // Sparklines: quick visual shape check per series.
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  for (const auto& s : series_) {
    const double max_v = *std::max_element(s.values.begin(), s.values.end());
    out += "  ";
    for (const double v : s.values) {
      int lvl = max_v > 0.0 ? static_cast<int>(v / max_v * 7.0) : 0;
      lvl = std::clamp(lvl, 0, 7);
      out += kLevels[lvl];
    }
    out += "  <- " + s.label + "\n";
  }
  return out;
}

void FigureData::print() const { std::fputs(render().c_str(), stdout); }

void print_banner(const std::string& text) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", text.c_str());
  std::printf("============================================================\n");
}

}  // namespace pofi::stats
