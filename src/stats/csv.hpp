// Minimal RFC-4180 CSV writing, for exporting experiment series to plotting
// tools. Cells containing commas, quotes or newlines are quoted and escaped.
#pragma once

#include <string>
#include <vector>

namespace pofi::stats {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> columns);

  CsvWriter& add_row(std::vector<std::string> cells);

  /// Provenance comment emitted as a "# ..." line ahead of the header (one
  /// call per line). Plotting tools skip them; humans and reproduction
  /// scripts get the spec hash / build version the data came from.
  CsvWriter& add_comment(std::string line);

  [[nodiscard]] std::string render() const;

  /// Write render() to `path`; returns false on IO error.
  [[nodiscard]] bool write_file(const std::string& path) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Escape one cell per RFC 4180 (exposed for tests).
  [[nodiscard]] static std::string escape(const std::string& cell);

 private:
  std::vector<std::string> columns_;
  std::vector<std::string> comments_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pofi::stats
