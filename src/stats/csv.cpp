#include "stats/csv.hpp"

#include <cstdio>

namespace pofi::stats {

CsvWriter::CsvWriter(std::vector<std::string> columns) : columns_(std::move(columns)) {}

CsvWriter& CsvWriter::add_row(std::vector<std::string> cells) {
  cells.resize(columns_.size());
  rows_.push_back(std::move(cells));
  return *this;
}

CsvWriter& CsvWriter::add_comment(std::string line) {
  comments_.push_back(std::move(line));
  return *this;
}

std::string CsvWriter::escape(const std::string& cell) {
  const bool needs_quoting =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quoting) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::string CsvWriter::render() const {
  std::string out;
  for (const auto& comment : comments_) {
    // A comment may carry embedded newlines (multi-line provenance blobs);
    // every physical line must get its own "# " prefix or the bare remainder
    // would be parsed as a data row by any CSV reader.
    std::size_t pos = 0;
    while (pos <= comment.size()) {
      std::size_t nl = comment.find('\n', pos);
      if (nl == std::string::npos) nl = comment.size();
      std::size_t end = nl;
      if (end > pos && comment[end - 1] == '\r') --end;  // tolerate CRLF input
      out += "# ";
      out.append(comment, pos, end - pos);
      out += '\n';
      pos = nl + 1;
    }
  }
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    out += escape(columns_[c]);
    out += (c + 1 < columns_.size()) ? "," : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += escape(row[c]);
      out += (c + 1 < row.size()) ? "," : "";
    }
    out += '\n';
  }
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string data = render();
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

}  // namespace pofi::stats
