// Streaming statistics for experiment reporting.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace pofi::stats {

/// Welford streaming mean/variance with min/max.
class RunningStat {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

  /// Half-width of the ~95% normal confidence interval of the mean.
  [[nodiscard]] double ci95_halfwidth() const {
    if (n_ < 2) return 0.0;
    return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-width linear histogram over [lo, hi); outliers clamp to edge bins.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins, 0) {}

  void add(double x) {
    const double f = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<std::int64_t>(f * static_cast<double>(bins_.size()));
    idx = std::clamp<std::int64_t>(idx, 0, static_cast<std::int64_t>(bins_.size()) - 1);
    ++bins_[static_cast<std::size_t>(idx)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const { return bins_; }
  [[nodiscard]] double bin_lo(std::size_t i) const {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) / static_cast<double>(bins_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const { return bin_lo(i + 1); }

  /// Value below which `q` of the mass lies (bin midpoint resolution).
  [[nodiscard]] double quantile(double q) const {
    if (total_ == 0) return lo_;
    const auto target = static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      acc += bins_[i];
      if (acc >= target) return 0.5 * (bin_lo(i) + bin_hi(i));
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t total_ = 0;
};

}  // namespace pofi::stats
