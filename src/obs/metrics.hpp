// Deterministic observability core: a dependency-free metric registry plus
// a causal trace log, designed so that instrumenting the simulation can
// never perturb it.
//
// Invariants the whole subsystem rests on:
//   * Instrumentation only READS simulation state and mutates obs-private
//     storage. No RNG draws, no event scheduling, no sim mutation — the
//     DeterminismGolden hashes must be identical with obs on and off.
//   * The hot path (add/set/record) is allocation-free and lock-free:
//     relaxed atomics into a fixed slot arena sized at construction.
//     Registration (rare) takes a mutex and is idempotent by name, so the
//     N chips of a ChipArray or the workers of a CampaignRunner can all
//     register the same metric concurrently and aggregate into one slot.
//   * Memory is bounded: kMaxMetrics slots, kMaxBuckets histogram buckets,
//     per-series sample capacity with drop-counting, ring-buffer spans.
//
// The compile-time gate: building with -DPOFI_OBS_ENABLED=0 turns
// sim::Simulator::metrics() into a constant nullptr, so every
//   if (auto* m = sim.metrics()) m->add(id);
// site folds away. The runtime gate is simply whether a registry was
// attached to the simulator (platform config `metrics: true`).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/fwd.hpp"
#include "obs/snapshot.hpp"
#include "sim/time.hpp"

#ifndef POFI_OBS_ENABLED
#define POFI_OBS_ENABLED 1
#endif

namespace pofi::obs {

// MetricId / kNoMetric live in obs/fwd.hpp: the interned handle for a
// registered metric. Instrument sites cache these; kNoMetric makes every
// operation a no-op, so a failed registration (arena full, kind clash)
// degrades to silence instead of crashing a run.

/// Causal begin/end spans keyed on simulated time. Single-writer: only the
/// (single-threaded) simulation thread touches a TraceLog. Completed spans
/// live in a ring buffer — once full, the oldest completed span is evicted
/// and counted as dropped. `end` with no matching open span is a tolerated
/// no-op so multi-exit code paths can close defensively.
class TraceLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 2048;

  explicit TraceLog(std::size_t capacity = kDefaultCapacity);

  TraceLog(const TraceLog&) = delete;
  TraceLog& operator=(const TraceLog&) = delete;

  /// Intern a span name once (e.g. in a constructor); begin/end take the id.
  [[nodiscard]] std::uint32_t intern(std::string_view name);

  void begin(std::uint32_t name_id, sim::TimePoint now);
  void end(std::uint32_t name_id, sim::TimePoint now);

  [[nodiscard]] std::uint64_t completed_count() const { return completed_; }
  [[nodiscard]] std::uint64_t dropped_count() const { return dropped_; }
  [[nodiscard]] std::size_t open_count() const { return open_.size(); }

  /// Append completed spans (chronological) into a snapshot.
  void append_to(Snapshot& snap) const;

  /// Session reset: drop all open and completed spans but keep the interned
  /// name table, so span ids cached in component constructors stay valid
  /// across a pooled-session reset. Buffer capacity is retained.
  void reset();

  /// Copyable span state (open stack + completed ring); the interned name
  /// table is registration, not state, exactly as in reset().
  struct StateImage;
  void snapshot(StateImage& out) const;
  void restore(const StateImage& image);

 private:
  struct Open {
    std::uint32_t name_id = 0;
    std::uint32_t parent_id = 0;  ///< kNoName when top-level
    std::int64_t begin_ns = 0;
  };
  struct Done {
    std::uint32_t name_id = 0;
    std::uint32_t parent_id = 0;
    std::int64_t begin_ns = 0;
    std::int64_t end_ns = 0;
  };
  static constexpr std::uint32_t kNoName = 0xFFFFFFFFu;

  std::vector<std::string> names_;
  std::vector<Open> open_;  ///< stack of in-flight spans
  std::vector<Done> ring_;  ///< completed spans; wraps at capacity_
  std::size_t capacity_;
  std::size_t head_ = 0;  ///< next overwrite position once the ring is full
  std::uint64_t completed_ = 0;
  std::uint64_t dropped_ = 0;
};

/// The registry: counters, gauges (with high-water mark), fixed-bucket
/// histograms and time-series samplers, all keyed by interned name.
class MetricRegistry {
 public:
  static constexpr std::size_t kMaxMetrics = 512;
  static constexpr std::size_t kMaxBuckets = 16;
  static constexpr std::size_t kDefaultSeriesCapacity = 1024;

  explicit MetricRegistry(std::size_t trace_capacity = TraceLog::kDefaultCapacity);

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // --- Registration (mutex-guarded, idempotent by name) ---------------------
  [[nodiscard]] MetricId counter(std::string_view name);
  [[nodiscard]] MetricId gauge(std::string_view name);
  /// `upper_bounds` are inclusive and must be ascending; at most kMaxBuckets.
  /// Values above the last bound land in an implicit overflow bucket.
  [[nodiscard]] MetricId histogram(std::string_view name,
                                   std::initializer_list<std::int64_t> upper_bounds);
  /// Bounded (t, value) sampler; once `capacity` samples are stored further
  /// ones are counted as dropped.
  [[nodiscard]] MetricId series(std::string_view name,
                                std::size_t capacity = kDefaultSeriesCapacity);

  // --- Hot path (lock-free, allocation-free) --------------------------------
  void add(MetricId id, std::uint64_t delta = 1) {
    if (delta == 0) return;
    if (id >= count_hint_.load(std::memory_order_relaxed)) return;
    slots_[id].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void set(MetricId id, std::uint64_t value) {
    if (id >= count_hint_.load(std::memory_order_relaxed)) return;
    Slot& s = slots_[id];
    s.value.store(value, std::memory_order_relaxed);
    std::uint64_t seen = s.high_water.load(std::memory_order_relaxed);
    while (seen < value &&
           !s.high_water.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  /// One atomic RMW per sample: the bucket alone is incremented and the
  /// histogram total is derived as the bucket sum at snapshot time, keeping
  /// the per-IO cost at a single contended cacheline touch.
  void record(MetricId id, std::int64_t value) {
    if (id >= count_hint_.load(std::memory_order_relaxed)) return;
    Slot& s = slots_[id];
    std::uint32_t b = 0;
    while (b < s.bucket_count && value > s.bounds[b]) ++b;
    s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  }

  /// Series sampling is mutex-guarded (samples carry doubles and sim time;
  /// rate is a handful per power cycle, never per-IO).
  void sample(MetricId id, sim::TimePoint t, double value);

  [[nodiscard]] TraceLog& trace() { return trace_; }

  // --- Read-out -------------------------------------------------------------
  /// Freeze everything into a name-sorted, plain-data snapshot.
  [[nodiscard]] Snapshot snapshot() const;
  /// Session reset: zero every counter/gauge/histogram/series value but keep
  /// all registrations (names, kinds, bounds, capacities), so MetricId
  /// handles cached by components survive. A reset registry snapshots
  /// identically to a freshly-built one once the same components re-register
  /// (idempotent, by name) and re-run.
  void reset_values();
  /// Test/assertion convenience: current value of a counter/gauge/histogram
  /// total by name; 0 when the name is unknown.
  [[nodiscard]] std::uint64_t value_of(std::string_view name) const;

  /// Value-level capture: every counter/gauge/histogram/series value plus
  /// the trace log, excluding registrations (names, kinds, bounds) exactly
  /// as reset_values() leaves them alone. Restoring rewinds the registry to
  /// the captured instant; slots registered after the capture are zeroed.
  struct ValueImage;
  void snapshot_values(ValueImage& out) const;
  void restore_values(const ValueImage& image);

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Slot {
    std::atomic<std::uint64_t> value{0};
    std::atomic<std::uint64_t> high_water{0};
    std::array<std::atomic<std::uint64_t>, kMaxBuckets + 1> buckets{};
    std::array<std::int64_t, kMaxBuckets> bounds{};
    std::uint32_t bucket_count = 0;
    Kind kind = Kind::kCounter;
    std::string name;
  };
  struct SeriesSlot {
    std::string name;
    std::size_t capacity = 0;
    std::vector<Snapshot::Sample> samples;  ///< reserved up front
    std::uint64_t dropped = 0;
  };
  static constexpr MetricId kSeriesBit = 0x80000000u;

  [[nodiscard]] MetricId register_slot(std::string_view name, Kind kind,
                                       std::initializer_list<std::int64_t> bounds);

  // Slots live in a fixed arena (atomics are immovable); `count_` only grows.
  // Hot-path bound checks read `count_hint_` (relaxed mirror of count_): an
  // id is only ever used after its registration returned, so the slot it
  // names is always published by then.
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint32_t> count_hint_{0};
  std::uint32_t count_ = 0;
  std::vector<std::unique_ptr<SeriesSlot>> series_;
  mutable std::mutex mutex_;
  TraceLog trace_;
};

struct TraceLog::StateImage {
  std::vector<Open> open;
  std::vector<Done> ring;
  std::size_t head = 0;
  std::uint64_t completed = 0;
  std::uint64_t dropped = 0;
};

struct MetricRegistry::ValueImage {
  struct SlotValues {
    std::uint64_t value = 0;
    std::uint64_t high_water = 0;
    std::array<std::uint64_t, kMaxBuckets + 1> buckets{};
  };
  struct SeriesValues {
    std::vector<Snapshot::Sample> samples;
    std::uint64_t dropped = 0;
  };
  std::vector<SlotValues> slots;
  std::vector<SeriesValues> series;
  TraceLog::StateImage trace;
};

}  // namespace pofi::obs
