// Forward declarations + the MetricId handle type, for headers that cache
// metric ids without pulling in the full registry (see obs/metrics.hpp).
#pragma once

#include <cstdint>

namespace pofi::obs {

class MetricRegistry;
class TraceLog;
struct Snapshot;

using MetricId = std::uint32_t;
inline constexpr MetricId kNoMetric = 0xFFFFFFFFu;

}  // namespace pofi::obs
