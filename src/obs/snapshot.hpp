// Plain-data view of everything a MetricRegistry accumulated during one
// experiment: the frozen, copyable form that travels on
// platform::ExperimentResult through the runner, the checkpoint codec and
// the --metrics JSON export. Deliberately free of any obs/sim dependency so
// every layer can hold one without linking the live registry.
//
// Ordering contract: counters/gauges/histograms/series are sorted by name,
// spans are chronological (completion order). Two registries fed the same
// deterministic simulation produce bit-identical Snapshots.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pofi::obs {

struct Snapshot {
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    std::uint64_t last = 0;
    std::uint64_t high_water = 0;
  };
  struct Histogram {
    std::string name;
    /// Inclusive upper bounds; counts has bounds.size() + 1 entries, the
    /// last being the overflow bucket.
    std::vector<std::int64_t> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t total = 0;
  };
  struct Sample {
    std::int64_t t_ns = 0;
    double value = 0.0;
  };
  struct Series {
    std::string name;
    std::vector<Sample> samples;
    std::uint64_t dropped = 0;  ///< samples discarded once capacity filled
  };
  struct Span {
    std::string name;
    std::string parent;  ///< innermost enclosing open span, "" at top level
    std::int64_t begin_ns = 0;
    std::int64_t end_ns = 0;
  };

  std::vector<Counter> counters;
  std::vector<Gauge> gauges;
  std::vector<Histogram> histograms;
  std::vector<Series> series;
  std::vector<Span> spans;
  std::uint64_t spans_dropped = 0;

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty() &&
           series.empty() && spans.empty() && spans_dropped == 0;
  }

  /// Convenience for tests and attribution checks: value of a counter by
  /// name, 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const {
    for (const auto& c : counters) {
      if (c.name == name) return c.value;
    }
    return 0;
  }
};

}  // namespace pofi::obs
