#include "obs/metrics.hpp"

#include <algorithm>

namespace pofi::obs {

// ---------------------------------------------------------------- TraceLog

TraceLog::TraceLog(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {
  ring_.reserve(capacity_);
  open_.reserve(32);
  names_.reserve(32);
}

std::uint32_t TraceLog::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<std::uint32_t>(i);
  }
  names_.emplace_back(name);
  return static_cast<std::uint32_t>(names_.size() - 1);
}

void TraceLog::begin(std::uint32_t name_id, sim::TimePoint now) {
  if (name_id >= names_.size()) return;
  Open o;
  o.name_id = name_id;
  o.parent_id = open_.empty() ? kNoName : open_.back().name_id;
  o.begin_ns = now.count_ns();
  open_.push_back(o);
}

void TraceLog::end(std::uint32_t name_id, sim::TimePoint now) {
  // Innermost open span with this name; tolerate unmatched ends so that
  // multi-exit instrumentation sites can close defensively.
  for (std::size_t i = open_.size(); i-- > 0;) {
    if (open_[i].name_id != name_id) continue;
    Done d;
    d.name_id = open_[i].name_id;
    d.parent_id = open_[i].parent_id;
    d.begin_ns = open_[i].begin_ns;
    d.end_ns = now.count_ns();
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    if (ring_.size() < capacity_) {
      ring_.push_back(d);
    } else {
      ring_[head_] = d;
      head_ = (head_ + 1) % capacity_;
      ++dropped_;
    }
    ++completed_;
    return;
  }
}

void TraceLog::append_to(Snapshot& snap) const {
  const auto emit = [&](const Done& d) {
    Snapshot::Span s;
    s.name = names_[d.name_id];
    s.parent = d.parent_id == kNoName ? std::string() : names_[d.parent_id];
    s.begin_ns = d.begin_ns;
    s.end_ns = d.end_ns;
    snap.spans.push_back(std::move(s));
  };
  // Once the ring wrapped, head_ points at the oldest surviving span.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    emit(ring_[(head_ + i) % ring_.size()]);
  }
  snap.spans_dropped += dropped_;
}

void TraceLog::reset() {
  open_.clear();
  ring_.clear();
  head_ = 0;
  completed_ = 0;
  dropped_ = 0;
}

// ---------------------------------------------------------- MetricRegistry

MetricRegistry::MetricRegistry(std::size_t trace_capacity)
    : slots_(std::make_unique<Slot[]>(kMaxMetrics)), trace_(trace_capacity) {}

MetricId MetricRegistry::register_slot(std::string_view name, Kind kind,
                                       std::initializer_list<std::int64_t> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    if (slots_[i].name == name) {
      // Idempotent registration: the chips of an array or the workers of a
      // runner all resolve to one shared slot. A kind clash is a programming
      // error; degrade to a silent no-op handle rather than crash a run.
      return slots_[i].kind == kind ? i : kNoMetric;
    }
  }
  if (count_ == kMaxMetrics) return kNoMetric;
  Slot& s = slots_[count_];
  s.name.assign(name);
  s.kind = kind;
  s.bucket_count = 0;
  for (const std::int64_t b : bounds) {
    if (s.bucket_count == kMaxBuckets) break;
    s.bounds[s.bucket_count++] = b;
  }
  const MetricId id = count_++;
  count_hint_.store(count_, std::memory_order_release);
  return id;
}

MetricId MetricRegistry::counter(std::string_view name) {
  return register_slot(name, Kind::kCounter, {});
}

MetricId MetricRegistry::gauge(std::string_view name) {
  return register_slot(name, Kind::kGauge, {});
}

MetricId MetricRegistry::histogram(std::string_view name,
                                   std::initializer_list<std::int64_t> upper_bounds) {
  return register_slot(name, Kind::kHistogram, upper_bounds);
}

MetricId MetricRegistry::series(std::string_view name, std::size_t capacity) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (series_[i]->name == name) return static_cast<MetricId>(i) | kSeriesBit;
  }
  auto slot = std::make_unique<SeriesSlot>();
  slot->name.assign(name);
  slot->capacity = std::max<std::size_t>(1, capacity);
  slot->samples.reserve(slot->capacity);
  series_.push_back(std::move(slot));
  return static_cast<MetricId>(series_.size() - 1) | kSeriesBit;
}

void MetricRegistry::sample(MetricId id, sim::TimePoint t, double value) {
  if ((id & kSeriesBit) == 0 || id == kNoMetric) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t idx = id & ~kSeriesBit;
  if (idx >= series_.size()) return;
  SeriesSlot& s = *series_[idx];
  if (s.samples.size() == s.capacity) {
    ++s.dropped;
    return;
  }
  s.samples.push_back(Snapshot::Sample{t.count_ns(), value});
}

Snapshot MetricRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (std::uint32_t i = 0; i < count_; ++i) {
    const Slot& s = slots_[i];
    switch (s.kind) {
      case Kind::kCounter: {
        Snapshot::Counter c;
        c.name = s.name;
        c.value = s.value.load(std::memory_order_relaxed);
        snap.counters.push_back(std::move(c));
        break;
      }
      case Kind::kGauge: {
        Snapshot::Gauge g;
        g.name = s.name;
        g.last = s.value.load(std::memory_order_relaxed);
        g.high_water = s.high_water.load(std::memory_order_relaxed);
        snap.gauges.push_back(std::move(g));
        break;
      }
      case Kind::kHistogram: {
        Snapshot::Histogram h;
        h.name = s.name;
        h.bounds.assign(s.bounds.begin(), s.bounds.begin() + s.bucket_count);
        h.counts.resize(s.bucket_count + 1);
        h.total = 0;
        for (std::uint32_t b = 0; b <= s.bucket_count; ++b) {
          h.counts[b] = s.buckets[b].load(std::memory_order_relaxed);
          h.total += h.counts[b];  // record() keeps no separate total
        }
        snap.histograms.push_back(std::move(h));
        break;
      }
    }
  }
  for (const auto& s : series_) {
    Snapshot::Series out;
    out.name = s->name;
    out.samples = s->samples;
    out.dropped = s->dropped;
    snap.series.push_back(std::move(out));
  }
  const auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.series.begin(), snap.series.end(), by_name);
  trace_.append_to(snap);
  return snap;
}

void MetricRegistry::reset_values() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    Slot& s = slots_[i];
    s.value.store(0, std::memory_order_relaxed);
    s.high_water.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
  for (auto& s : series_) {
    s->samples.clear();  // capacity stays reserved
    s->dropped = 0;
  }
  trace_.reset();
}

std::uint64_t MetricRegistry::value_of(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    const Slot& s = slots_[i];
    if (s.name != name) continue;
    if (s.kind != Kind::kHistogram) return s.value.load(std::memory_order_relaxed);
    std::uint64_t total = 0;
    for (std::uint32_t b = 0; b <= s.bucket_count; ++b) {
      total += s.buckets[b].load(std::memory_order_relaxed);
    }
    return total;
  }
  return 0;
}

void TraceLog::snapshot(StateImage& out) const {
  out.open = open_;
  out.ring = ring_;
  out.head = head_;
  out.completed = completed_;
  out.dropped = dropped_;
}

void TraceLog::restore(const StateImage& image) {
  open_ = image.open;
  ring_ = image.ring;
  head_ = image.head;
  completed_ = image.completed;
  dropped_ = image.dropped;
}

void MetricRegistry::snapshot_values(ValueImage& out) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  out.slots.resize(count_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    const Slot& s = slots_[i];
    ValueImage::SlotValues& v = out.slots[i];
    v.value = s.value.load(std::memory_order_relaxed);
    v.high_water = s.high_water.load(std::memory_order_relaxed);
    for (std::size_t b = 0; b < v.buckets.size(); ++b) {
      v.buckets[b] = s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  out.series.resize(series_.size());
  for (std::size_t i = 0; i < series_.size(); ++i) {
    out.series[i].samples = series_[i]->samples;
    out.series[i].dropped = series_[i]->dropped;
  }
  trace_.snapshot(out.trace);
}

void MetricRegistry::restore_values(const ValueImage& image) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint32_t i = 0; i < count_; ++i) {
    Slot& s = slots_[i];
    // Slots registered after the capture rewind to zero (same as a fresh
    // registration at the captured instant would have held).
    static const ValueImage::SlotValues kZero{};
    const ValueImage::SlotValues& v = i < image.slots.size() ? image.slots[i] : kZero;
    s.value.store(v.value, std::memory_order_relaxed);
    s.high_water.store(v.high_water, std::memory_order_relaxed);
    for (std::size_t b = 0; b < v.buckets.size(); ++b) {
      s.buckets[b].store(v.buckets[b], std::memory_order_relaxed);
    }
  }
  for (std::size_t i = 0; i < series_.size(); ++i) {
    if (i < image.series.size()) {
      series_[i]->samples = image.series[i].samples;
      series_[i]->dropped = image.series[i].dropped;
    } else {
      series_[i]->samples.clear();
      series_[i]->dropped = 0;
    }
  }
  trace_.restore(image.trace);
}

}  // namespace pofi::obs
