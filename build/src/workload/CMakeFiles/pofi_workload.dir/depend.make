# Empty dependencies file for pofi_workload.
# This may be replaced when dependencies are built.
