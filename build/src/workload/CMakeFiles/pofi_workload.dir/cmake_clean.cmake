file(REMOVE_RECURSE
  "CMakeFiles/pofi_workload.dir/checksum.cpp.o"
  "CMakeFiles/pofi_workload.dir/checksum.cpp.o.d"
  "CMakeFiles/pofi_workload.dir/payload.cpp.o"
  "CMakeFiles/pofi_workload.dir/payload.cpp.o.d"
  "CMakeFiles/pofi_workload.dir/trace_replay.cpp.o"
  "CMakeFiles/pofi_workload.dir/trace_replay.cpp.o.d"
  "CMakeFiles/pofi_workload.dir/workload.cpp.o"
  "CMakeFiles/pofi_workload.dir/workload.cpp.o.d"
  "libpofi_workload.a"
  "libpofi_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
