
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/checksum.cpp" "src/workload/CMakeFiles/pofi_workload.dir/checksum.cpp.o" "gcc" "src/workload/CMakeFiles/pofi_workload.dir/checksum.cpp.o.d"
  "/root/repo/src/workload/payload.cpp" "src/workload/CMakeFiles/pofi_workload.dir/payload.cpp.o" "gcc" "src/workload/CMakeFiles/pofi_workload.dir/payload.cpp.o.d"
  "/root/repo/src/workload/trace_replay.cpp" "src/workload/CMakeFiles/pofi_workload.dir/trace_replay.cpp.o" "gcc" "src/workload/CMakeFiles/pofi_workload.dir/trace_replay.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/pofi_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/pofi_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/pofi_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
