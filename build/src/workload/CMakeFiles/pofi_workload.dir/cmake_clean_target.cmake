file(REMOVE_RECURSE
  "libpofi_workload.a"
)
