
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftl/allocator.cpp" "src/ftl/CMakeFiles/pofi_ftl.dir/allocator.cpp.o" "gcc" "src/ftl/CMakeFiles/pofi_ftl.dir/allocator.cpp.o.d"
  "/root/repo/src/ftl/ftl.cpp" "src/ftl/CMakeFiles/pofi_ftl.dir/ftl.cpp.o" "gcc" "src/ftl/CMakeFiles/pofi_ftl.dir/ftl.cpp.o.d"
  "/root/repo/src/ftl/mapping.cpp" "src/ftl/CMakeFiles/pofi_ftl.dir/mapping.cpp.o" "gcc" "src/ftl/CMakeFiles/pofi_ftl.dir/mapping.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
