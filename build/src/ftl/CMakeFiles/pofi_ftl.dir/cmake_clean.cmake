file(REMOVE_RECURSE
  "CMakeFiles/pofi_ftl.dir/allocator.cpp.o"
  "CMakeFiles/pofi_ftl.dir/allocator.cpp.o.d"
  "CMakeFiles/pofi_ftl.dir/ftl.cpp.o"
  "CMakeFiles/pofi_ftl.dir/ftl.cpp.o.d"
  "CMakeFiles/pofi_ftl.dir/mapping.cpp.o"
  "CMakeFiles/pofi_ftl.dir/mapping.cpp.o.d"
  "libpofi_ftl.a"
  "libpofi_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
