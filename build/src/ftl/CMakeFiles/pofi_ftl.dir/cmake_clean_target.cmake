file(REMOVE_RECURSE
  "libpofi_ftl.a"
)
