# Empty dependencies file for pofi_ftl.
# This may be replaced when dependencies are built.
