file(REMOVE_RECURSE
  "libpofi_platform.a"
)
