file(REMOVE_RECURSE
  "CMakeFiles/pofi_platform.dir/analyzer.cpp.o"
  "CMakeFiles/pofi_platform.dir/analyzer.cpp.o.d"
  "CMakeFiles/pofi_platform.dir/campaign_suite.cpp.o"
  "CMakeFiles/pofi_platform.dir/campaign_suite.cpp.o.d"
  "CMakeFiles/pofi_platform.dir/report.cpp.o"
  "CMakeFiles/pofi_platform.dir/report.cpp.o.d"
  "CMakeFiles/pofi_platform.dir/shadow_store.cpp.o"
  "CMakeFiles/pofi_platform.dir/shadow_store.cpp.o.d"
  "CMakeFiles/pofi_platform.dir/test_platform.cpp.o"
  "CMakeFiles/pofi_platform.dir/test_platform.cpp.o.d"
  "libpofi_platform.a"
  "libpofi_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
