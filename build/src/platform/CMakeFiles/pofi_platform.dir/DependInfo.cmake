
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/analyzer.cpp" "src/platform/CMakeFiles/pofi_platform.dir/analyzer.cpp.o" "gcc" "src/platform/CMakeFiles/pofi_platform.dir/analyzer.cpp.o.d"
  "/root/repo/src/platform/campaign_suite.cpp" "src/platform/CMakeFiles/pofi_platform.dir/campaign_suite.cpp.o" "gcc" "src/platform/CMakeFiles/pofi_platform.dir/campaign_suite.cpp.o.d"
  "/root/repo/src/platform/report.cpp" "src/platform/CMakeFiles/pofi_platform.dir/report.cpp.o" "gcc" "src/platform/CMakeFiles/pofi_platform.dir/report.cpp.o.d"
  "/root/repo/src/platform/shadow_store.cpp" "src/platform/CMakeFiles/pofi_platform.dir/shadow_store.cpp.o" "gcc" "src/platform/CMakeFiles/pofi_platform.dir/shadow_store.cpp.o.d"
  "/root/repo/src/platform/test_platform.cpp" "src/platform/CMakeFiles/pofi_platform.dir/test_platform.cpp.o" "gcc" "src/platform/CMakeFiles/pofi_platform.dir/test_platform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/psu/CMakeFiles/pofi_psu.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/pofi_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/pofi_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/pofi_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pofi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pofi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
