# Empty dependencies file for pofi_platform.
# This may be replaced when dependencies are built.
