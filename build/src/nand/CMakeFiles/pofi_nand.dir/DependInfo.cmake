
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nand/chip.cpp" "src/nand/CMakeFiles/pofi_nand.dir/chip.cpp.o" "gcc" "src/nand/CMakeFiles/pofi_nand.dir/chip.cpp.o.d"
  "/root/repo/src/nand/chip_array.cpp" "src/nand/CMakeFiles/pofi_nand.dir/chip_array.cpp.o" "gcc" "src/nand/CMakeFiles/pofi_nand.dir/chip_array.cpp.o.d"
  "/root/repo/src/nand/ecc.cpp" "src/nand/CMakeFiles/pofi_nand.dir/ecc.cpp.o" "gcc" "src/nand/CMakeFiles/pofi_nand.dir/ecc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
