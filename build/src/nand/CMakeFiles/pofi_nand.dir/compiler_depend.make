# Empty compiler generated dependencies file for pofi_nand.
# This may be replaced when dependencies are built.
