file(REMOVE_RECURSE
  "CMakeFiles/pofi_nand.dir/chip.cpp.o"
  "CMakeFiles/pofi_nand.dir/chip.cpp.o.d"
  "CMakeFiles/pofi_nand.dir/chip_array.cpp.o"
  "CMakeFiles/pofi_nand.dir/chip_array.cpp.o.d"
  "CMakeFiles/pofi_nand.dir/ecc.cpp.o"
  "CMakeFiles/pofi_nand.dir/ecc.cpp.o.d"
  "libpofi_nand.a"
  "libpofi_nand.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_nand.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
