file(REMOVE_RECURSE
  "libpofi_nand.a"
)
