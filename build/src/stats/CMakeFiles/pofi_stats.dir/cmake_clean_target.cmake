file(REMOVE_RECURSE
  "libpofi_stats.a"
)
