file(REMOVE_RECURSE
  "CMakeFiles/pofi_stats.dir/csv.cpp.o"
  "CMakeFiles/pofi_stats.dir/csv.cpp.o.d"
  "CMakeFiles/pofi_stats.dir/table.cpp.o"
  "CMakeFiles/pofi_stats.dir/table.cpp.o.d"
  "libpofi_stats.a"
  "libpofi_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
