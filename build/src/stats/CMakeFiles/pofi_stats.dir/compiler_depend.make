# Empty compiler generated dependencies file for pofi_stats.
# This may be replaced when dependencies are built.
