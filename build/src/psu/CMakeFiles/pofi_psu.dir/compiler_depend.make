# Empty compiler generated dependencies file for pofi_psu.
# This may be replaced when dependencies are built.
