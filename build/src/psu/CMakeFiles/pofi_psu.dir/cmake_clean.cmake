file(REMOVE_RECURSE
  "CMakeFiles/pofi_psu.dir/atx_control.cpp.o"
  "CMakeFiles/pofi_psu.dir/atx_control.cpp.o.d"
  "CMakeFiles/pofi_psu.dir/discharge_model.cpp.o"
  "CMakeFiles/pofi_psu.dir/discharge_model.cpp.o.d"
  "CMakeFiles/pofi_psu.dir/power_supply.cpp.o"
  "CMakeFiles/pofi_psu.dir/power_supply.cpp.o.d"
  "libpofi_psu.a"
  "libpofi_psu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_psu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
