file(REMOVE_RECURSE
  "libpofi_psu.a"
)
