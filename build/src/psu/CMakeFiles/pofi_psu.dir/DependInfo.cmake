
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/psu/atx_control.cpp" "src/psu/CMakeFiles/pofi_psu.dir/atx_control.cpp.o" "gcc" "src/psu/CMakeFiles/pofi_psu.dir/atx_control.cpp.o.d"
  "/root/repo/src/psu/discharge_model.cpp" "src/psu/CMakeFiles/pofi_psu.dir/discharge_model.cpp.o" "gcc" "src/psu/CMakeFiles/pofi_psu.dir/discharge_model.cpp.o.d"
  "/root/repo/src/psu/power_supply.cpp" "src/psu/CMakeFiles/pofi_psu.dir/power_supply.cpp.o" "gcc" "src/psu/CMakeFiles/pofi_psu.dir/power_supply.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
