file(REMOVE_RECURSE
  "CMakeFiles/pofi_ssd.dir/presets.cpp.o"
  "CMakeFiles/pofi_ssd.dir/presets.cpp.o.d"
  "CMakeFiles/pofi_ssd.dir/ssd.cpp.o"
  "CMakeFiles/pofi_ssd.dir/ssd.cpp.o.d"
  "CMakeFiles/pofi_ssd.dir/write_cache.cpp.o"
  "CMakeFiles/pofi_ssd.dir/write_cache.cpp.o.d"
  "libpofi_ssd.a"
  "libpofi_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
