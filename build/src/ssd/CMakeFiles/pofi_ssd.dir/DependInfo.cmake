
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/presets.cpp" "src/ssd/CMakeFiles/pofi_ssd.dir/presets.cpp.o" "gcc" "src/ssd/CMakeFiles/pofi_ssd.dir/presets.cpp.o.d"
  "/root/repo/src/ssd/ssd.cpp" "src/ssd/CMakeFiles/pofi_ssd.dir/ssd.cpp.o" "gcc" "src/ssd/CMakeFiles/pofi_ssd.dir/ssd.cpp.o.d"
  "/root/repo/src/ssd/write_cache.cpp" "src/ssd/CMakeFiles/pofi_ssd.dir/write_cache.cpp.o" "gcc" "src/ssd/CMakeFiles/pofi_ssd.dir/write_cache.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/pofi_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/psu/CMakeFiles/pofi_psu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
