file(REMOVE_RECURSE
  "libpofi_ssd.a"
)
