# Empty dependencies file for pofi_ssd.
# This may be replaced when dependencies are built.
