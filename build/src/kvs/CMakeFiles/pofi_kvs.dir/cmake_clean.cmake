file(REMOVE_RECURSE
  "CMakeFiles/pofi_kvs.dir/minikv.cpp.o"
  "CMakeFiles/pofi_kvs.dir/minikv.cpp.o.d"
  "libpofi_kvs.a"
  "libpofi_kvs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_kvs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
