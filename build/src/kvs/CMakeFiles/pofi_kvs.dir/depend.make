# Empty dependencies file for pofi_kvs.
# This may be replaced when dependencies are built.
