file(REMOVE_RECURSE
  "libpofi_kvs.a"
)
