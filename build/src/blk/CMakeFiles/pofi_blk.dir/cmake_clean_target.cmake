file(REMOVE_RECURSE
  "libpofi_blk.a"
)
