
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blk/queue.cpp" "src/blk/CMakeFiles/pofi_blk.dir/queue.cpp.o" "gcc" "src/blk/CMakeFiles/pofi_blk.dir/queue.cpp.o.d"
  "/root/repo/src/blk/trace.cpp" "src/blk/CMakeFiles/pofi_blk.dir/trace.cpp.o" "gcc" "src/blk/CMakeFiles/pofi_blk.dir/trace.cpp.o.d"
  "/root/repo/src/blk/trace_text.cpp" "src/blk/CMakeFiles/pofi_blk.dir/trace_text.cpp.o" "gcc" "src/blk/CMakeFiles/pofi_blk.dir/trace_text.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/pofi_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pofi_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/pofi_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/psu/CMakeFiles/pofi_psu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
