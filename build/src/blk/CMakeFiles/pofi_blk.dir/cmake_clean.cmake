file(REMOVE_RECURSE
  "CMakeFiles/pofi_blk.dir/queue.cpp.o"
  "CMakeFiles/pofi_blk.dir/queue.cpp.o.d"
  "CMakeFiles/pofi_blk.dir/trace.cpp.o"
  "CMakeFiles/pofi_blk.dir/trace.cpp.o.d"
  "CMakeFiles/pofi_blk.dir/trace_text.cpp.o"
  "CMakeFiles/pofi_blk.dir/trace_text.cpp.o.d"
  "libpofi_blk.a"
  "libpofi_blk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_blk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
