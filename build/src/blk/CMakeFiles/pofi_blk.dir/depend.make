# Empty dependencies file for pofi_blk.
# This may be replaced when dependencies are built.
