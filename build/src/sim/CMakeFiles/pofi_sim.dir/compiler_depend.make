# Empty compiler generated dependencies file for pofi_sim.
# This may be replaced when dependencies are built.
