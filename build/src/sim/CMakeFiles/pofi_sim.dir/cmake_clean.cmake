file(REMOVE_RECURSE
  "CMakeFiles/pofi_sim.dir/event_queue.cpp.o"
  "CMakeFiles/pofi_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/pofi_sim.dir/log.cpp.o"
  "CMakeFiles/pofi_sim.dir/log.cpp.o.d"
  "CMakeFiles/pofi_sim.dir/rng.cpp.o"
  "CMakeFiles/pofi_sim.dir/rng.cpp.o.d"
  "CMakeFiles/pofi_sim.dir/simulator.cpp.o"
  "CMakeFiles/pofi_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/pofi_sim.dir/time.cpp.o"
  "CMakeFiles/pofi_sim.dir/time.cpp.o.d"
  "libpofi_sim.a"
  "libpofi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
