file(REMOVE_RECURSE
  "libpofi_sim.a"
)
