file(REMOVE_RECURSE
  "../bench/bench_ablation_cache_plp"
  "../bench/bench_ablation_cache_plp.pdb"
  "CMakeFiles/bench_ablation_cache_plp.dir/bench_ablation_cache_plp.cpp.o"
  "CMakeFiles/bench_ablation_cache_plp.dir/bench_ablation_cache_plp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cache_plp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
