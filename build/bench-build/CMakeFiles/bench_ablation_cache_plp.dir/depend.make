# Empty dependencies file for bench_ablation_cache_plp.
# This may be replaced when dependencies are built.
