file(REMOVE_RECURSE
  "../bench/bench_secIVD_access_pattern"
  "../bench/bench_secIVD_access_pattern.pdb"
  "CMakeFiles/bench_secIVD_access_pattern.dir/bench_secIVD_access_pattern.cpp.o"
  "CMakeFiles/bench_secIVD_access_pattern.dir/bench_secIVD_access_pattern.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVD_access_pattern.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
