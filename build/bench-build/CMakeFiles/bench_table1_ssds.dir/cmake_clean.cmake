file(REMOVE_RECURSE
  "../bench/bench_table1_ssds"
  "../bench/bench_table1_ssds.pdb"
  "CMakeFiles/bench_table1_ssds.dir/bench_table1_ssds.cpp.o"
  "CMakeFiles/bench_table1_ssds.dir/bench_table1_ssds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_ssds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
