file(REMOVE_RECURSE
  "../bench/bench_fig5_request_type"
  "../bench/bench_fig5_request_type.pdb"
  "CMakeFiles/bench_fig5_request_type.dir/bench_fig5_request_type.cpp.o"
  "CMakeFiles/bench_fig5_request_type.dir/bench_fig5_request_type.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_request_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
