# Empty compiler generated dependencies file for bench_fig5_request_type.
# This may be replaced when dependencies are built.
