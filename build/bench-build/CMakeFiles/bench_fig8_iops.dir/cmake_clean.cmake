file(REMOVE_RECURSE
  "../bench/bench_fig8_iops"
  "../bench/bench_fig8_iops.pdb"
  "CMakeFiles/bench_fig8_iops.dir/bench_fig8_iops.cpp.o"
  "CMakeFiles/bench_fig8_iops.dir/bench_fig8_iops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
