# Empty dependencies file for bench_ablation_cutoff_model.
# This may be replaced when dependencies are built.
