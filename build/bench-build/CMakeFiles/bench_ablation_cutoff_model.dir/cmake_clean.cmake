file(REMOVE_RECURSE
  "../bench/bench_ablation_cutoff_model"
  "../bench/bench_ablation_cutoff_model.pdb"
  "CMakeFiles/bench_ablation_cutoff_model.dir/bench_ablation_cutoff_model.cpp.o"
  "CMakeFiles/bench_ablation_cutoff_model.dir/bench_ablation_cutoff_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cutoff_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
