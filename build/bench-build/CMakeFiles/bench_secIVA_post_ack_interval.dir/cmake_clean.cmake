file(REMOVE_RECURSE
  "../bench/bench_secIVA_post_ack_interval"
  "../bench/bench_secIVA_post_ack_interval.pdb"
  "CMakeFiles/bench_secIVA_post_ack_interval.dir/bench_secIVA_post_ack_interval.cpp.o"
  "CMakeFiles/bench_secIVA_post_ack_interval.dir/bench_secIVA_post_ack_interval.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secIVA_post_ack_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
