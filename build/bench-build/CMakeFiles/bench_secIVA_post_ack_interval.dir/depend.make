# Empty dependencies file for bench_secIVA_post_ack_interval.
# This may be replaced when dependencies are built.
