file(REMOVE_RECURSE
  "../bench/bench_ablation_wear"
  "../bench/bench_ablation_wear.pdb"
  "CMakeFiles/bench_ablation_wear.dir/bench_ablation_wear.cpp.o"
  "CMakeFiles/bench_ablation_wear.dir/bench_ablation_wear.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_wear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
