# Empty dependencies file for bench_fig6_wss.
# This may be replaced when dependencies are built.
