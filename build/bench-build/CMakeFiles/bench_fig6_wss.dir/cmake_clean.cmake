file(REMOVE_RECURSE
  "../bench/bench_fig6_wss"
  "../bench/bench_fig6_wss.pdb"
  "CMakeFiles/bench_fig6_wss.dir/bench_fig6_wss.cpp.o"
  "CMakeFiles/bench_fig6_wss.dir/bench_fig6_wss.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_wss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
