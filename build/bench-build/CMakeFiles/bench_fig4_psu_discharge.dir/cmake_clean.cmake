file(REMOVE_RECURSE
  "../bench/bench_fig4_psu_discharge"
  "../bench/bench_fig4_psu_discharge.pdb"
  "CMakeFiles/bench_fig4_psu_discharge.dir/bench_fig4_psu_discharge.cpp.o"
  "CMakeFiles/bench_fig4_psu_discharge.dir/bench_fig4_psu_discharge.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_psu_discharge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
