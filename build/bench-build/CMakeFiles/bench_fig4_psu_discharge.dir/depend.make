# Empty dependencies file for bench_fig4_psu_discharge.
# This may be replaced when dependencies are built.
