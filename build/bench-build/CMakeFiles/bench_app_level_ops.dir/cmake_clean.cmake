file(REMOVE_RECURSE
  "../bench/bench_app_level_ops"
  "../bench/bench_app_level_ops.pdb"
  "CMakeFiles/bench_app_level_ops.dir/bench_app_level_ops.cpp.o"
  "CMakeFiles/bench_app_level_ops.dir/bench_app_level_ops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_app_level_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
