# Empty dependencies file for bench_app_level_ops.
# This may be replaced when dependencies are built.
