# Empty dependencies file for bench_fig7_request_size.
# This may be replaced when dependencies are built.
