file(REMOVE_RECURSE
  "../bench/bench_micro_platform"
  "../bench/bench_micro_platform.pdb"
  "CMakeFiles/bench_micro_platform.dir/bench_micro_platform.cpp.o"
  "CMakeFiles/bench_micro_platform.dir/bench_micro_platform.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
