# Empty dependencies file for bench_fleet_comparison.
# This may be replaced when dependencies are built.
