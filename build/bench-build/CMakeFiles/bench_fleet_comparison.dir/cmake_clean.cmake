file(REMOVE_RECURSE
  "../bench/bench_fleet_comparison"
  "../bench/bench_fleet_comparison.pdb"
  "CMakeFiles/bench_fleet_comparison.dir/bench_fleet_comparison.cpp.o"
  "CMakeFiles/bench_fleet_comparison.dir/bench_fleet_comparison.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
