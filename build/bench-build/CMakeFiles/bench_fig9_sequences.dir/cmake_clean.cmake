file(REMOVE_RECURSE
  "../bench/bench_fig9_sequences"
  "../bench/bench_fig9_sequences.pdb"
  "CMakeFiles/bench_fig9_sequences.dir/bench_fig9_sequences.cpp.o"
  "CMakeFiles/bench_fig9_sequences.dir/bench_fig9_sequences.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
