file(REMOVE_RECURSE
  "../bench/bench_ablation_por_recovery"
  "../bench/bench_ablation_por_recovery.pdb"
  "CMakeFiles/bench_ablation_por_recovery.dir/bench_ablation_por_recovery.cpp.o"
  "CMakeFiles/bench_ablation_por_recovery.dir/bench_ablation_por_recovery.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_por_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
