# Empty compiler generated dependencies file for bench_ablation_por_recovery.
# This may be replaced when dependencies are built.
