# Empty dependencies file for datacenter_outage.
# This may be replaced when dependencies are built.
