file(REMOVE_RECURSE
  "CMakeFiles/datacenter_outage.dir/datacenter_outage.cpp.o"
  "CMakeFiles/datacenter_outage.dir/datacenter_outage.cpp.o.d"
  "datacenter_outage"
  "datacenter_outage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
