file(REMOVE_RECURSE
  "CMakeFiles/vendor_qualification.dir/vendor_qualification.cpp.o"
  "CMakeFiles/vendor_qualification.dir/vendor_qualification.cpp.o.d"
  "vendor_qualification"
  "vendor_qualification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vendor_qualification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
