# Empty dependencies file for vendor_qualification.
# This may be replaced when dependencies are built.
