file(REMOVE_RECURSE
  "CMakeFiles/pofi_run.dir/pofi_run.cpp.o"
  "CMakeFiles/pofi_run.dir/pofi_run.cpp.o.d"
  "pofi_run"
  "pofi_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pofi_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
