# Empty dependencies file for pofi_run.
# This may be replaced when dependencies are built.
