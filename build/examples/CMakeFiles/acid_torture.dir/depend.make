# Empty dependencies file for acid_torture.
# This may be replaced when dependencies are built.
