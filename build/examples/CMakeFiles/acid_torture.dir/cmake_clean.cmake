file(REMOVE_RECURSE
  "CMakeFiles/acid_torture.dir/acid_torture.cpp.o"
  "CMakeFiles/acid_torture.dir/acid_torture.cpp.o.d"
  "acid_torture"
  "acid_torture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acid_torture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
