file(REMOVE_RECURSE
  "CMakeFiles/integration_campaign_test.dir/integration_campaign_test.cpp.o"
  "CMakeFiles/integration_campaign_test.dir/integration_campaign_test.cpp.o.d"
  "integration_campaign_test"
  "integration_campaign_test.pdb"
  "integration_campaign_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_campaign_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
