# Empty dependencies file for integration_campaign_test.
# This may be replaced when dependencies are built.
