file(REMOVE_RECURSE
  "CMakeFiles/psu_discharge_test.dir/psu_discharge_test.cpp.o"
  "CMakeFiles/psu_discharge_test.dir/psu_discharge_test.cpp.o.d"
  "psu_discharge_test"
  "psu_discharge_test.pdb"
  "psu_discharge_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psu_discharge_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
