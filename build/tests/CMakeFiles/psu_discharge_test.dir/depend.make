# Empty dependencies file for psu_discharge_test.
# This may be replaced when dependencies are built.
