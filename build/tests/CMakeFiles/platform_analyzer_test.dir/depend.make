# Empty dependencies file for platform_analyzer_test.
# This may be replaced when dependencies are built.
