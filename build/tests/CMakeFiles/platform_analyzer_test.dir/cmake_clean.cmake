file(REMOVE_RECURSE
  "CMakeFiles/platform_analyzer_test.dir/platform_analyzer_test.cpp.o"
  "CMakeFiles/platform_analyzer_test.dir/platform_analyzer_test.cpp.o.d"
  "platform_analyzer_test"
  "platform_analyzer_test.pdb"
  "platform_analyzer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_analyzer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
