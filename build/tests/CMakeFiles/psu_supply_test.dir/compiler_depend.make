# Empty compiler generated dependencies file for psu_supply_test.
# This may be replaced when dependencies are built.
