file(REMOVE_RECURSE
  "CMakeFiles/psu_supply_test.dir/psu_supply_test.cpp.o"
  "CMakeFiles/psu_supply_test.dir/psu_supply_test.cpp.o.d"
  "psu_supply_test"
  "psu_supply_test.pdb"
  "psu_supply_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psu_supply_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
