# Empty dependencies file for kvs_minikv_test.
# This may be replaced when dependencies are built.
