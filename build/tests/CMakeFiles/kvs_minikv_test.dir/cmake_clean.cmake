file(REMOVE_RECURSE
  "CMakeFiles/kvs_minikv_test.dir/kvs_minikv_test.cpp.o"
  "CMakeFiles/kvs_minikv_test.dir/kvs_minikv_test.cpp.o.d"
  "kvs_minikv_test"
  "kvs_minikv_test.pdb"
  "kvs_minikv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvs_minikv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
