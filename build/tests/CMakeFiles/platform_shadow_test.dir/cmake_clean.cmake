file(REMOVE_RECURSE
  "CMakeFiles/platform_shadow_test.dir/platform_shadow_test.cpp.o"
  "CMakeFiles/platform_shadow_test.dir/platform_shadow_test.cpp.o.d"
  "platform_shadow_test"
  "platform_shadow_test.pdb"
  "platform_shadow_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_shadow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
