file(REMOVE_RECURSE
  "CMakeFiles/blk_trace_text_test.dir/blk_trace_text_test.cpp.o"
  "CMakeFiles/blk_trace_text_test.dir/blk_trace_text_test.cpp.o.d"
  "blk_trace_text_test"
  "blk_trace_text_test.pdb"
  "blk_trace_text_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_trace_text_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
