
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blk_trace_text_test.cpp" "tests/CMakeFiles/blk_trace_text_test.dir/blk_trace_text_test.cpp.o" "gcc" "tests/CMakeFiles/blk_trace_text_test.dir/blk_trace_text_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/pofi_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pofi_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/kvs/CMakeFiles/pofi_kvs.dir/DependInfo.cmake"
  "/root/repo/build/src/blk/CMakeFiles/pofi_blk.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/pofi_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/psu/CMakeFiles/pofi_psu.dir/DependInfo.cmake"
  "/root/repo/build/src/ftl/CMakeFiles/pofi_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/nand/CMakeFiles/pofi_nand.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pofi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/pofi_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
