# Empty compiler generated dependencies file for blk_trace_text_test.
# This may be replaced when dependencies are built.
