# Empty dependencies file for ssd_cache_test.
# This may be replaced when dependencies are built.
