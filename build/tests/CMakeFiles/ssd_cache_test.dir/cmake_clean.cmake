file(REMOVE_RECURSE
  "CMakeFiles/ssd_cache_test.dir/ssd_cache_test.cpp.o"
  "CMakeFiles/ssd_cache_test.dir/ssd_cache_test.cpp.o.d"
  "ssd_cache_test"
  "ssd_cache_test.pdb"
  "ssd_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
