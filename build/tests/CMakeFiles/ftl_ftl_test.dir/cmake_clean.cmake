file(REMOVE_RECURSE
  "CMakeFiles/ftl_ftl_test.dir/ftl_ftl_test.cpp.o"
  "CMakeFiles/ftl_ftl_test.dir/ftl_ftl_test.cpp.o.d"
  "ftl_ftl_test"
  "ftl_ftl_test.pdb"
  "ftl_ftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_ftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
