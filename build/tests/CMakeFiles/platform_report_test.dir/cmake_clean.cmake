file(REMOVE_RECURSE
  "CMakeFiles/platform_report_test.dir/platform_report_test.cpp.o"
  "CMakeFiles/platform_report_test.dir/platform_report_test.cpp.o.d"
  "platform_report_test"
  "platform_report_test.pdb"
  "platform_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
