# Empty dependencies file for platform_report_test.
# This may be replaced when dependencies are built.
