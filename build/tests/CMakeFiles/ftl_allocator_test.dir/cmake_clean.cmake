file(REMOVE_RECURSE
  "CMakeFiles/ftl_allocator_test.dir/ftl_allocator_test.cpp.o"
  "CMakeFiles/ftl_allocator_test.dir/ftl_allocator_test.cpp.o.d"
  "ftl_allocator_test"
  "ftl_allocator_test.pdb"
  "ftl_allocator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_allocator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
