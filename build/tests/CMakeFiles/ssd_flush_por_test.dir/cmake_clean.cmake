file(REMOVE_RECURSE
  "CMakeFiles/ssd_flush_por_test.dir/ssd_flush_por_test.cpp.o"
  "CMakeFiles/ssd_flush_por_test.dir/ssd_flush_por_test.cpp.o.d"
  "ssd_flush_por_test"
  "ssd_flush_por_test.pdb"
  "ssd_flush_por_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_flush_por_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
