# Empty dependencies file for ssd_flush_por_test.
# This may be replaced when dependencies are built.
