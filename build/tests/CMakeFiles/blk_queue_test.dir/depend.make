# Empty dependencies file for blk_queue_test.
# This may be replaced when dependencies are built.
