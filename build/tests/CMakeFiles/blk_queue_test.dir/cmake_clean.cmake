file(REMOVE_RECURSE
  "CMakeFiles/blk_queue_test.dir/blk_queue_test.cpp.o"
  "CMakeFiles/blk_queue_test.dir/blk_queue_test.cpp.o.d"
  "blk_queue_test"
  "blk_queue_test.pdb"
  "blk_queue_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blk_queue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
