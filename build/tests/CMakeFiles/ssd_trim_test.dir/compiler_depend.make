# Empty compiler generated dependencies file for ssd_trim_test.
# This may be replaced when dependencies are built.
