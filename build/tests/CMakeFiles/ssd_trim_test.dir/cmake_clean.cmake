file(REMOVE_RECURSE
  "CMakeFiles/ssd_trim_test.dir/ssd_trim_test.cpp.o"
  "CMakeFiles/ssd_trim_test.dir/ssd_trim_test.cpp.o.d"
  "ssd_trim_test"
  "ssd_trim_test.pdb"
  "ssd_trim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssd_trim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
