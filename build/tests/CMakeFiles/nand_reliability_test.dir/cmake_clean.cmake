file(REMOVE_RECURSE
  "CMakeFiles/nand_reliability_test.dir/nand_reliability_test.cpp.o"
  "CMakeFiles/nand_reliability_test.dir/nand_reliability_test.cpp.o.d"
  "nand_reliability_test"
  "nand_reliability_test.pdb"
  "nand_reliability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_reliability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
