file(REMOVE_RECURSE
  "CMakeFiles/integration_shapes_test.dir/integration_shapes_test.cpp.o"
  "CMakeFiles/integration_shapes_test.dir/integration_shapes_test.cpp.o.d"
  "integration_shapes_test"
  "integration_shapes_test.pdb"
  "integration_shapes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_shapes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
