file(REMOVE_RECURSE
  "CMakeFiles/stats_csv_test.dir/stats_csv_test.cpp.o"
  "CMakeFiles/stats_csv_test.dir/stats_csv_test.cpp.o.d"
  "stats_csv_test"
  "stats_csv_test.pdb"
  "stats_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
