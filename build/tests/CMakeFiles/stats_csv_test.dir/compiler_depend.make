# Empty compiler generated dependencies file for stats_csv_test.
# This may be replaced when dependencies are built.
