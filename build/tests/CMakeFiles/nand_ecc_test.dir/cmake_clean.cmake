file(REMOVE_RECURSE
  "CMakeFiles/nand_ecc_test.dir/nand_ecc_test.cpp.o"
  "CMakeFiles/nand_ecc_test.dir/nand_ecc_test.cpp.o.d"
  "nand_ecc_test"
  "nand_ecc_test.pdb"
  "nand_ecc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nand_ecc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
