file(REMOVE_RECURSE
  "CMakeFiles/ftl_mapping_test.dir/ftl_mapping_test.cpp.o"
  "CMakeFiles/ftl_mapping_test.dir/ftl_mapping_test.cpp.o.d"
  "ftl_mapping_test"
  "ftl_mapping_test.pdb"
  "ftl_mapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_mapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
