# Empty compiler generated dependencies file for workload_payload_test.
# This may be replaced when dependencies are built.
