file(REMOVE_RECURSE
  "CMakeFiles/workload_payload_test.dir/workload_payload_test.cpp.o"
  "CMakeFiles/workload_payload_test.dir/workload_payload_test.cpp.o.d"
  "workload_payload_test"
  "workload_payload_test.pdb"
  "workload_payload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_payload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
