# Empty dependencies file for ftl_property_test.
# This may be replaced when dependencies are built.
