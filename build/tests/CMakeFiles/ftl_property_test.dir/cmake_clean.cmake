file(REMOVE_RECURSE
  "CMakeFiles/ftl_property_test.dir/ftl_property_test.cpp.o"
  "CMakeFiles/ftl_property_test.dir/ftl_property_test.cpp.o.d"
  "ftl_property_test"
  "ftl_property_test.pdb"
  "ftl_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftl_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
