file(REMOVE_RECURSE
  "CMakeFiles/platform_suite_test.dir/platform_suite_test.cpp.o"
  "CMakeFiles/platform_suite_test.dir/platform_suite_test.cpp.o.d"
  "platform_suite_test"
  "platform_suite_test.pdb"
  "platform_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/platform_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
