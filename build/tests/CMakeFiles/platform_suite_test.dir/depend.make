# Empty dependencies file for platform_suite_test.
# This may be replaced when dependencies are built.
